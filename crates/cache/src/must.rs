//! Must analysis: which blocks are *guaranteed* cached.
//!
//! Abstract must states assign each cached block an upper bound on its LRU
//! age (0 = MRU). A block present in the must state is present in **every**
//! concrete state the abstract state represents, so a reference to it is an
//! *always hit*. Update and join follow Ferdinand's abstract semantics
//! (reference [8] of the paper).

use std::fmt;

use rtpf_isa::MemBlockId;

use crate::config::CacheConfig;

/// Abstract must cache state.
///
/// Per set, `ages[h]` holds the blocks whose maximal LRU age is `h`; each
/// block appears in at most one bucket, and the total number of blocks per
/// set never exceeds the associativity.
///
/// # Example
///
/// ```
/// use rtpf_cache::{CacheConfig, MustState};
/// use rtpf_isa::MemBlockId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = CacheConfig::new(2, 16, 32)?; // one 2-way set
/// let mut must = MustState::new(&config);
/// must.update(MemBlockId(1));
/// must.update(MemBlockId(2));
/// assert!(must.contains(MemBlockId(1))); // guaranteed cached (age 1)
/// must.update(MemBlockId(3));            // ages 1 out of the guarantee
/// assert!(!must.contains(MemBlockId(1)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MustState {
    /// `sets[s][h]` = sorted blocks of set `s` with max-age `h`.
    sets: Vec<Vec<Vec<MemBlockId>>>,
    assoc: u32,
    n_sets: u32,
}

impl MustState {
    /// The empty must state (nothing guaranteed cached) — also the analysis
    /// top for joins and the correct entry state (`ĉ_I`).
    pub fn new(config: &CacheConfig) -> Self {
        MustState {
            sets: vec![vec![Vec::new(); config.assoc() as usize]; config.n_sets() as usize],
            assoc: config.assoc(),
            n_sets: config.n_sets(),
        }
    }

    /// Maximal age of `block`, if it is guaranteed cached.
    pub fn age(&self, block: MemBlockId) -> Option<u32> {
        let set = (block.0 % u64::from(self.n_sets)) as usize;
        for (h, bucket) in self.sets[set].iter().enumerate() {
            if bucket.binary_search(&block).is_ok() {
                return Some(h as u32);
            }
        }
        None
    }

    /// Whether a reference to `block` is an always-hit in this state.
    #[inline]
    pub fn contains(&self, block: MemBlockId) -> bool {
        self.age(block).is_some()
    }

    /// Abstract must update `Û(ĉ, s)`: the referenced block becomes age 0;
    /// younger blocks age by one; blocks aging past the associativity are
    /// no longer guaranteed cached.
    pub fn update(&mut self, block: MemBlockId) {
        let set = (block.0 % u64::from(self.n_sets)) as usize;
        let a = self.assoc as usize;
        let old_age = {
            let mut found = None;
            for (h, bucket) in self.sets[set].iter().enumerate() {
                if bucket.binary_search(&block).is_ok() {
                    found = Some(h);
                    break;
                }
            }
            found
        };
        let buckets = &mut self.sets[set];
        match old_age {
            Some(h) => {
                // Blocks with age < h grow one step older; the touched block
                // moves to age 0; ages ≥ h are unchanged.
                if let Ok(pos) = buckets[h].binary_search(&block) {
                    buckets[h].remove(pos);
                }
                for i in (1..=h).rev() {
                    let moved = std::mem::take(&mut buckets[i - 1]);
                    merge_into(&mut buckets[i], moved);
                }
                buckets[0] = vec![block];
            }
            None => {
                // Everything ages one step; the oldest bucket falls out.
                buckets.pop();
                buckets.insert(0, vec![block]);
                debug_assert_eq!(buckets.len(), a);
            }
        }
    }

    /// Must join (Definition in [8]): keep only blocks present on **both**
    /// sides, at their *maximal* age.
    pub fn join(&self, other: &MustState) -> MustState {
        debug_assert_eq!(self.n_sets, other.n_sets);
        debug_assert_eq!(self.assoc, other.assoc);
        let mut out = MustState::new_raw(self.assoc, self.n_sets);
        for s in 0..self.n_sets as usize {
            for (h, bucket) in self.sets[s].iter().enumerate() {
                for &b in bucket {
                    if let Some(h2) = other.age_in_set(s, b) {
                        let age = h.max(h2 as usize);
                        insert_sorted(&mut out.sets[s][age], b);
                    }
                }
            }
        }
        out
    }

    /// All blocks guaranteed cached, with their maximal ages.
    pub fn iter(&self) -> impl Iterator<Item = (MemBlockId, u32)> + '_ {
        self.sets.iter().flat_map(|set| {
            set.iter()
                .enumerate()
                .flat_map(|(h, bucket)| bucket.iter().map(move |&b| (b, h as u32)))
        })
    }

    /// Number of blocks guaranteed cached.
    pub fn len(&self) -> usize {
        self.sets.iter().flatten().map(Vec::len).sum()
    }

    /// Whether nothing is guaranteed cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn new_raw(assoc: u32, n_sets: u32) -> Self {
        MustState {
            sets: vec![vec![Vec::new(); assoc as usize]; n_sets as usize],
            assoc,
            n_sets,
        }
    }

    fn age_in_set(&self, set: usize, block: MemBlockId) -> Option<u32> {
        for (h, bucket) in self.sets[set].iter().enumerate() {
            if bucket.binary_search(&block).is_ok() {
                return Some(h as u32);
            }
        }
        None
    }
}

fn insert_sorted(v: &mut Vec<MemBlockId>, b: MemBlockId) {
    if let Err(pos) = v.binary_search(&b) {
        v.insert(pos, b);
    }
}

fn merge_into(dst: &mut Vec<MemBlockId>, src: Vec<MemBlockId>) {
    for b in src {
        insert_sorted(dst, b);
    }
}

impl fmt::Display for MustState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (s, set) in self.sets.iter().enumerate() {
            write!(f, "set {s}:")?;
            for (h, bucket) in set.iter().enumerate() {
                let cells: Vec<String> = bucket.iter().map(|b| b.to_string()).collect();
                write!(f, " age{h}={{{}}}", cells.join(","))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig::new(2, 16, 32).unwrap() // one set, 2-way
    }

    #[test]
    fn update_inserts_at_age_zero() {
        let mut m = MustState::new(&cfg());
        m.update(MemBlockId(1));
        assert_eq!(m.age(MemBlockId(1)), Some(0));
        assert!(m.contains(MemBlockId(1)));
    }

    #[test]
    fn update_ages_out_old_blocks() {
        let mut m = MustState::new(&cfg());
        m.update(MemBlockId(1));
        m.update(MemBlockId(2)); // 1 → age 1
        assert_eq!(m.age(MemBlockId(1)), Some(1));
        m.update(MemBlockId(3)); // 1 ages past assoc → gone
        assert!(!m.contains(MemBlockId(1)));
        assert_eq!(m.age(MemBlockId(2)), Some(1));
        assert_eq!(m.age(MemBlockId(3)), Some(0));
    }

    #[test]
    fn touching_a_guaranteed_block_refreshes_it() {
        let mut m = MustState::new(&cfg());
        m.update(MemBlockId(1));
        m.update(MemBlockId(2));
        m.update(MemBlockId(1)); // promote back to 0; 2 ages to 1
        assert_eq!(m.age(MemBlockId(1)), Some(0));
        assert_eq!(m.age(MemBlockId(2)), Some(1));
        m.update(MemBlockId(3));
        assert!(!m.contains(MemBlockId(2)));
    }

    #[test]
    fn join_keeps_intersection_at_max_age() {
        let mut a = MustState::new(&cfg());
        a.update(MemBlockId(1)); // age 0 in a
        a.update(MemBlockId(2));
        let mut b = MustState::new(&cfg());
        b.update(MemBlockId(2));
        b.update(MemBlockId(1)); // age 0 in b, but age 1 in a
        let j = a.join(&b);
        assert_eq!(j.age(MemBlockId(1)), Some(1)); // max(1, 0)
        assert_eq!(j.age(MemBlockId(2)), Some(1)); // max(0, 1)
    }

    #[test]
    fn join_drops_one_sided_blocks() {
        let mut a = MustState::new(&cfg());
        a.update(MemBlockId(1));
        let b = MustState::new(&cfg());
        let j = a.join(&b);
        assert!(j.is_empty());
    }

    #[test]
    fn soundness_vs_concrete_on_a_fixed_string() {
        use crate::concrete::ConcreteState;
        // Run the same access string through the concrete and must models;
        // every must-cached block must be concretely cached.
        let config = CacheConfig::new(2, 16, 64).unwrap();
        let mut c = ConcreteState::new(&config);
        let mut m = MustState::new(&config);
        for &b in &[1u64, 5, 1, 9, 13, 5, 1, 2, 6, 2] {
            c.access(MemBlockId(b));
            m.update(MemBlockId(b));
            for (blk, _) in m.iter() {
                assert!(c.contains(blk), "must claims {blk} but concrete lacks it");
            }
        }
    }
}
