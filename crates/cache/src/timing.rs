//! Memory-system timing parameters shared by WCET analysis and simulation.

use std::fmt;

/// Cycle-level timing of the memory hierarchy for one cache geometry.
///
/// `rtpf-energy` derives these from the CACTI-style model; tests construct
/// them directly. All analyses interpret a reference as costing
/// [`MemTiming::hit_cycles`] on a hit and [`MemTiming::miss_cycles`] on a
/// miss (total, access included).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemTiming {
    /// Cycles for a level-1 hit.
    pub hit_cycles: u64,
    /// Total cycles for a miss that goes all the way to backing memory
    /// (DRAM access + line fill + restart).
    pub miss_cycles: u64,
    /// Prefetch latency `Λ` (Definition 4): cycles from issuing a prefetch
    /// until the block is in cache. Typically equals the fill time.
    pub prefetch_latency: u64,
    /// Total cycles for an L1 miss served by the L2 cache, when a second
    /// level exists. `None` in the single-level hierarchy; always between
    /// `hit_cycles` and `miss_cycles` when present.
    pub l2_hit_cycles: Option<u64>,
}

impl MemTiming {
    /// A typical embedded configuration: 1-cycle hits, `penalty`-cycle
    /// misses, prefetch latency equal to the miss time.
    pub fn with_miss_penalty(penalty: u64) -> Self {
        MemTiming {
            hit_cycles: 1,
            miss_cycles: 1 + penalty,
            prefetch_latency: 1 + penalty,
            l2_hit_cycles: None,
        }
    }

    /// The same timing with an L2-hit service time, clamped into
    /// `[hit_cycles, miss_cycles]` so a "faster than L1" or "slower than
    /// DRAM" L2 cannot be expressed.
    pub fn with_l2_hit(mut self, l2_hit_cycles: u64) -> Self {
        self.l2_hit_cycles = Some(l2_hit_cycles.clamp(self.hit_cycles, self.miss_cycles));
        self
    }

    /// Cost of one access under the given hit/miss outcome.
    #[inline]
    pub fn access_cycles(&self, hit: bool) -> u64 {
        if hit {
            self.hit_cycles
        } else {
            self.miss_cycles
        }
    }
}

impl Default for MemTiming {
    /// 1-cycle hits, 20-cycle miss penalty.
    fn default() -> Self {
        MemTiming::with_miss_penalty(20)
    }
}

impl fmt::Display for MemTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hit={} miss={} Λ={}",
            self.hit_cycles, self.miss_cycles, self.prefetch_latency
        )?;
        if let Some(l2) = self.l2_hit_cycles {
            write!(f, " l2hit={l2}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let t = MemTiming::default();
        assert_eq!(t.hit_cycles, 1);
        assert_eq!(t.miss_cycles, 21);
        assert_eq!(t.l2_hit_cycles, None);
        assert_eq!(t.access_cycles(true), 1);
        assert_eq!(t.access_cycles(false), 21);
    }

    #[test]
    fn l2_hit_time_is_clamped_between_hit_and_miss() {
        let t = MemTiming::with_miss_penalty(20);
        assert_eq!(t.with_l2_hit(8).l2_hit_cycles, Some(8));
        assert_eq!(t.with_l2_hit(0).l2_hit_cycles, Some(1));
        assert_eq!(t.with_l2_hit(500).l2_hit_cycles, Some(21));
        assert_eq!(t.to_string(), "hit=1 miss=21 Λ=21");
        assert_eq!(t.with_l2_hit(8).to_string(), "hit=1 miss=21 Λ=21 l2hit=8");
    }
}
