//! The pre-packing abstract state representations, kept as a
//! differential-testing oracle.
//!
//! [`LegacyMustState`] and [`LegacyMayState`] are the sorted
//! `Vec<(MemBlockId, u32)>` implementations that [`crate::MustState`] and
//! [`crate::MayState`] replaced with packed words (see [`crate::packed`]
//! and DESIGN.md §11). They are compiled only for this crate's tests and
//! under the `legacy-oracle` feature; the equivalence property tests at
//! the bottom of this module drive both representations through identical
//! access/join strings — randomized and extracted from the benchmark
//! suite — across Table 2 geometries and all three policies, and require
//! agreement on every observable (`age`, `contains`, `len`, element
//! sets, and the derived hit/miss classification).
//!
//! The oracle deliberately does **not** clamp effective associativities
//! to the packed age lane the way the packed states do: it represents the
//! old behavior exactly. The clamp only matters beyond 255 effective
//! ways, far outside any geometry the analyses run (Table 2 tops out at
//! 4 ways, tree-PLRU at 64).

use rtpf_isa::MemBlockId;

use crate::config::CacheConfig;
use crate::policy::ReplacementPolicy;

/// The pre-packing must state: sorted `(block, max-age)` pairs.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LegacyMustState {
    entries: Vec<(MemBlockId, u32)>,
    assoc: u32,
    n_sets: u32,
}

impl LegacyMustState {
    /// The empty must state at the policy's effective associativity.
    pub fn new(config: &CacheConfig) -> Self {
        LegacyMustState {
            entries: Vec::new(),
            assoc: config.policy().must_ways(config.assoc()),
            n_sets: config.n_sets(),
        }
    }

    /// Maximal age of `block`, if it is guaranteed cached.
    pub fn age(&self, block: MemBlockId) -> Option<u32> {
        self.entries
            .binary_search_by_key(&block, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Whether a reference to `block` is an always-hit in this state.
    pub fn contains(&self, block: MemBlockId) -> bool {
        self.age(block).is_some()
    }

    /// The abstract must update, as formerly implemented.
    pub fn update(&mut self, block: MemBlockId) {
        let n_sets = u64::from(self.n_sets);
        let set = block.0 % n_sets;
        let assoc = self.assoc;
        let cutoff = self.age(block).unwrap_or(assoc);
        self.entries.retain_mut(|e| {
            if e.0 == block {
                return false;
            }
            if e.0 .0 % n_sets == set && e.1 < cutoff {
                e.1 += 1;
                return e.1 < assoc;
            }
            true
        });
        let pos = self
            .entries
            .binary_search_by_key(&block, |e| e.0)
            .unwrap_err();
        self.entries.insert(pos, (block, 0));
    }

    /// The must join: intersection at maximal age.
    pub fn join(&self, other: &LegacyMustState) -> LegacyMustState {
        let mut entries = Vec::with_capacity(self.entries.len().min(other.entries.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (a, b) = (self.entries[i], other.entries[j]);
            match a.0.cmp(&b.0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    entries.push((a.0, a.1.max(b.1)));
                    i += 1;
                    j += 1;
                }
            }
        }
        LegacyMustState {
            entries,
            assoc: self.assoc,
            n_sets: self.n_sets,
        }
    }

    /// All guaranteed blocks with their ages, in block order.
    pub fn iter(&self) -> impl Iterator<Item = (MemBlockId, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of blocks guaranteed cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no block is guaranteed cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The pre-packing may state: sorted `(block, min-age)` pairs.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LegacyMayState {
    entries: Vec<(MemBlockId, u32)>,
    assoc: u32,
    n_sets: u32,
}

impl LegacyMayState {
    /// The empty may state at the policy's effective associativity.
    pub fn new(config: &CacheConfig) -> Self {
        LegacyMayState {
            entries: Vec::new(),
            assoc: config.policy().may_ways(config.assoc()),
            n_sets: config.n_sets(),
        }
    }

    /// Minimal age of `block`, if it might be cached.
    pub fn age(&self, block: MemBlockId) -> Option<u32> {
        self.entries
            .binary_search_by_key(&block, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Whether `block` might be cached.
    pub fn contains(&self, block: MemBlockId) -> bool {
        self.age(block).is_some()
    }

    /// The abstract may update, as formerly implemented.
    pub fn update(&mut self, block: MemBlockId) {
        if self.assoc == ReplacementPolicy::UNBOUNDED {
            if let Err(pos) = self.entries.binary_search_by_key(&block, |e| e.0) {
                self.entries.insert(pos, (block, 0));
            }
            return;
        }
        let n_sets = u64::from(self.n_sets);
        let set = block.0 % n_sets;
        let assoc = self.assoc;
        let bump_max = self.age(block).unwrap_or(assoc - 1);
        self.entries.retain_mut(|e| {
            if e.0 == block {
                return false;
            }
            if e.0 .0 % n_sets == set && e.1 <= bump_max {
                e.1 += 1;
                return e.1 < assoc;
            }
            true
        });
        let pos = self
            .entries
            .binary_search_by_key(&block, |e| e.0)
            .unwrap_err();
        self.entries.insert(pos, (block, 0));
    }

    /// The may join: union at minimal age.
    pub fn join(&self, other: &LegacyMayState) -> LegacyMayState {
        let mut entries = Vec::with_capacity(self.entries.len().max(other.entries.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (a, b) = (self.entries[i], other.entries[j]);
            match a.0.cmp(&b.0) {
                std::cmp::Ordering::Less => {
                    entries.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    entries.push(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    entries.push((a.0, a.1.min(b.1)));
                    i += 1;
                    j += 1;
                }
            }
        }
        entries.extend_from_slice(&self.entries[i..]);
        entries.extend_from_slice(&other.entries[j..]);
        LegacyMayState {
            entries,
            assoc: self.assoc,
            n_sets: self.n_sets,
        }
    }

    /// All possibly-cached blocks with their ages, in block order.
    pub fn iter(&self) -> impl Iterator<Item = (MemBlockId, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of possibly-cached blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no block is possibly cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MayState, MustState};
    use proptest::prelude::*;

    /// Both representations side by side, advanced in lockstep.
    struct Lockstep {
        must: MustState,
        may: MayState,
        lmust: LegacyMustState,
        lmay: LegacyMayState,
    }

    impl Lockstep {
        fn new(config: &CacheConfig) -> Self {
            Lockstep {
                must: MustState::new(config),
                may: MayState::new(config),
                lmust: LegacyMustState::new(config),
                lmay: LegacyMayState::new(config),
            }
        }

        fn update(&mut self, b: MemBlockId) {
            self.must.update(b);
            self.may.update(b);
            self.lmust.update(b);
            self.lmay.update(b);
        }

        fn join(&self, other: &Lockstep) -> Lockstep {
            Lockstep {
                must: self.must.join(&other.must),
                may: self.may.join(&other.may),
                lmust: self.lmust.join(&other.lmust),
                lmay: self.lmay.join(&other.lmay),
            }
        }

        /// Every observable agrees: per-block ages (hence `contains` and
        /// the always-hit/always-miss classification), lengths, and the
        /// full element sets (order-independent — the packed states store
        /// `(set, block)` order, the legacy ones block order).
        fn assert_equivalent(&self, probe: impl Iterator<Item = u64>, ctx: &str) {
            for b in probe {
                let b = MemBlockId(b);
                assert_eq!(self.must.age(b), self.lmust.age(b), "{ctx}: must age {b}");
                assert_eq!(self.may.age(b), self.lmay.age(b), "{ctx}: may age {b}");
            }
            assert_eq!(self.must.len(), self.lmust.len(), "{ctx}: must len");
            assert_eq!(self.may.len(), self.lmay.len(), "{ctx}: may len");
            let mut a: Vec<_> = self.must.iter().collect();
            let mut b: Vec<_> = self.lmust.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{ctx}: must elements");
            let mut a: Vec<_> = self.may.iter().collect();
            let mut b: Vec<_> = self.lmay.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{ctx}: may elements");
        }
    }

    /// Geometries spanning Table 2's corners plus degenerate shapes.
    fn geometries() -> Vec<CacheConfig> {
        [
            (1u32, 16u32, 256u32), // k1: direct-mapped, 16 sets
            (2, 16, 32),           // single 2-way set
            (4, 16, 64),           // single 4-way set
            (2, 16, 256),          // k2
            (4, 32, 8192),         // k36: 64 sets
            (1, 32, 1024),         // direct-mapped, 32 sets
        ]
        .iter()
        .map(|&(a, b, c)| CacheConfig::new(a, b, c).unwrap())
        .collect()
    }

    proptest! {
        /// Packed and legacy states agree on every observable after any
        /// interleaving of updates and joins, across geometries and all
        /// three policies.
        #[test]
        fn packed_matches_legacy_on_random_strings(
            geo in 0..6usize,
            policy in 0..3usize,
            // Two access strings; the second feeds a join partner.
            ops in proptest::collection::vec((0u64..96, 0u32..2), 1..200),
        ) {
            let policy = ReplacementPolicy::ALL[policy];
            let config = geometries()[geo].with_policy(policy).unwrap();
            let mut a = Lockstep::new(&config);
            let mut b = Lockstep::new(&config);
            for (i, &(block, side)) in ops.iter().enumerate() {
                if side == 1 {
                    b.update(MemBlockId(block));
                } else {
                    a.update(MemBlockId(block));
                }
                // Join periodically so join equivalence is exercised on
                // states mid-construction, not just at the end.
                if i % 17 == 16 {
                    a = a.join(&b);
                }
                a.assert_equivalent(0..96, &format!("{config} op {i}"));
            }
            let j = a.join(&b);
            j.assert_equivalent(0..96, &format!("{config} final join"));
        }
    }

    /// Suite-driven equivalence: real benchmark address streams through
    /// every Table 2 geometry under all three policies.
    #[test]
    fn packed_matches_legacy_on_suite_programs() {
        for bench in rtpf_suite::catalog() {
            if !["bs", "fft1", "statemate"].contains(&bench.name) {
                continue;
            }
            // The program's instruction address stream in layout order.
            let layout = rtpf_isa::Layout::of(&bench.program);
            let addrs: Vec<u64> = bench
                .program
                .layout_order()
                .iter()
                .flat_map(|&bid| bench.program.block(bid).instrs().iter())
                .map(|&iid| layout.addr(iid))
                .collect();
            for (_, geo) in CacheConfig::paper_configs() {
                for policy in ReplacementPolicy::ALL {
                    let config = geo.with_policy(policy).unwrap();
                    let shift = config.block_bytes().trailing_zeros();
                    let mut l = Lockstep::new(&config);
                    for (i, &a) in addrs.iter().take(400).enumerate() {
                        l.update(MemBlockId(a >> shift));
                        if i % 50 == 49 {
                            let probe = addrs.iter().map(|&a| a >> shift);
                            l.assert_equivalent(probe, &format!("{} {config}", bench.name));
                        }
                    }
                }
            }
        }
    }

    /// The widest geometry the packed age lane represents exactly: LRU at
    /// 128 ways (`must_ways == may_ways == 128 ≤ packed::MAX_AGE`). The
    /// oracle and the packed states must agree on every observable through
    /// an eviction-heavy string with mid-stream joins — this is the last
    /// power-of-two associativity before the clamp engages.
    #[test]
    fn lockstep_agrees_at_the_largest_unclamped_associativity() {
        let config = CacheConfig::new(128, 16, 2048).unwrap(); // one 128-way set
        assert!(
            !MayState::new(&config).is_unbounded(),
            "128 ways fit the lane"
        );
        let mut a = Lockstep::new(&config);
        let mut b = Lockstep::new(&config);
        // 200 distinct blocks in one set: well past the associativity, so
        // both aging-out paths (must guarantee loss, may definite eviction)
        // fire; the re-reference pass exercises hit-path aging.
        for i in 0..200u64 {
            a.update(MemBlockId(i));
            b.update(MemBlockId(199 - i));
            if i % 31 == 30 {
                a = a.join(&b);
            }
            a.assert_equivalent(0..200, &format!("{config} cold fill {i}"));
        }
        for i in (0..200u64).step_by(3) {
            a.update(MemBlockId(i));
        }
        a.join(&b)
            .assert_equivalent(0..200, &format!("{config} warm join"));
    }

    /// One past the lane: at 256 ways must clamps its effective
    /// associativity to [`packed::MAX_AGE`] (255) while the oracle keeps
    /// the true width. Both agree exactly up to age 254; the 255th miss is
    /// where the documented sound divergence appears — packed drops the
    /// guarantee one access early, the oracle holds it for one more.
    #[test]
    fn must_clamps_to_the_packed_age_lane_at_256_ways() {
        use crate::packed;

        let config = CacheConfig::new(256, 16, 4096).unwrap(); // one 256-way set
        let mut must = MustState::new(&config);
        let mut legacy = LegacyMustState::new(&config);
        let victim = MemBlockId(1000);
        must.update(victim);
        legacy.update(victim);
        // 254 distinct misses: the victim ages in lockstep on both sides,
        // ending exactly at MAX_AGE - 1 — the last age the lane can hold.
        for i in 0..u64::from(packed::MAX_AGE) - 1 {
            must.update(MemBlockId(i));
            legacy.update(MemBlockId(i));
            assert_eq!(
                must.age(victim),
                legacy.age(victim),
                "agreement below the clamp (miss {i})"
            );
        }
        assert_eq!(must.age(victim), Some(packed::MAX_AGE - 1));
        // Miss 255: age would reach the clamped associativity, so packed
        // soundly forgets the guarantee; the unclamped oracle still holds
        // the block at age 255 of 256.
        must.update(MemBlockId(999));
        legacy.update(MemBlockId(999));
        assert!(!must.contains(victim), "clamped must drops at 255 ways");
        assert_eq!(
            legacy.age(victim),
            Some(packed::MAX_AGE),
            "oracle keeps the true width"
        );
    }

    /// The may-side counterpart: a bounded effective associativity wider
    /// than the lane widens to the UNBOUNDED sentinel domain — nothing is
    /// ever definitely evicted, so no reference classifies always-miss.
    /// At 128 ways the domain stays bounded and definite eviction fires.
    #[test]
    fn may_widens_to_unbounded_past_the_age_lane() {
        // LRU is the only policy whose bounded may domain can outgrow the
        // lane; FIFO and tree-PLRU are unbounded at any width already.
        let wide = CacheConfig::new(256, 16, 4096).unwrap();
        let mut may = MayState::new(&wide);
        assert!(may.is_unbounded(), "256 > MAX_AGE widens to the sentinel");
        let victim = MemBlockId(1000);
        may.update(victim);
        for i in 0..600u64 {
            may.update(MemBlockId(i));
        }
        assert_eq!(
            may.age(victim),
            Some(0),
            "unbounded may never ages anything out"
        );

        let edge = CacheConfig::new(128, 16, 2048).unwrap();
        let mut may = MayState::new(&edge);
        assert!(!may.is_unbounded());
        may.update(victim);
        for i in 0..128u64 {
            may.update(MemBlockId(i));
        }
        assert!(
            !may.contains(victim),
            "bounded may evicts past 128 distinct blocks"
        );

        for policy in [ReplacementPolicy::Fifo, ReplacementPolicy::Plru] {
            let small = CacheConfig::new(4, 16, 64)
                .unwrap()
                .with_policy(policy)
                .unwrap();
            assert!(
                MayState::new(&small).is_unbounded(),
                "{policy}: competitiveness reduction has no bounded may domain"
            );
        }
    }
}
