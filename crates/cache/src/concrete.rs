//! Exact LRU cache states (`c : L → S` in the paper's Section 3.1).

use std::collections::BTreeSet;
use std::fmt;

use rtpf_isa::MemBlockId;

use crate::config::CacheConfig;

/// Result of one concrete cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessOutcome {
    /// The block was already cached (Property 1).
    Hit,
    /// The block was fetched; `evicted` is the replaced block, if the set
    /// was full (Properties 2 and 3).
    Miss {
        /// Block replaced to make room, if any.
        evicted: Option<MemBlockId>,
    },
}

impl AccessOutcome {
    /// Whether the access hit.
    #[inline]
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// The evicted block, if this was a replacing miss.
    pub fn evicted(&self) -> Option<MemBlockId> {
        match self {
            AccessOutcome::Hit => None,
            AccessOutcome::Miss { evicted } => *evicted,
        }
    }
}

/// A concrete state of a set-associative LRU cache.
///
/// Each set holds up to `assoc` blocks ordered most-recently-used first,
/// matching the `[MRU, LRU]` notation of the paper's Figure 1.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConcreteState {
    /// Per set: blocks MRU-first; length ≤ associativity.
    sets: Vec<Vec<MemBlockId>>,
    assoc: u32,
    n_sets: u32,
}

impl ConcreteState {
    /// An all-invalid cache (`ĉ_I`) for the given geometry.
    pub fn new(config: &CacheConfig) -> Self {
        ConcreteState {
            sets: vec![Vec::with_capacity(config.assoc() as usize); config.n_sets() as usize],
            assoc: config.assoc(),
            n_sets: config.n_sets(),
        }
    }

    /// The update function `U` (Definition 1): reference `block`, applying
    /// LRU replacement, and report the outcome.
    pub fn access(&mut self, block: MemBlockId) -> AccessOutcome {
        let set = (block.0 % u64::from(self.n_sets)) as usize;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&b| b == block) {
            // Hit: promote to MRU.
            let b = ways.remove(pos);
            ways.insert(0, b);
            return AccessOutcome::Hit;
        }
        let evicted = if ways.len() == self.assoc as usize {
            ways.pop()
        } else {
            None
        };
        ways.insert(0, block);
        AccessOutcome::Miss { evicted }
    }

    /// Whether `block` is currently cached.
    pub fn contains(&self, block: MemBlockId) -> bool {
        let set = (block.0 % u64::from(self.n_sets)) as usize;
        self.sets[set].contains(&block)
    }

    /// The set of all cached blocks, `B(ĉ)` (Definition 9).
    pub fn blocks(&self) -> BTreeSet<MemBlockId> {
        self.sets.iter().flatten().copied().collect()
    }

    /// Blocks of one set, MRU first.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn set(&self, set: usize) -> &[MemBlockId] {
        &self.sets[set]
    }

    /// Number of sets.
    #[inline]
    pub fn n_sets(&self) -> u32 {
        self.n_sets
    }

    /// Associativity.
    #[inline]
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Predicts, without mutating, which block an access to `block` would
    /// replace (Property 3 applied prospectively). Returns `None` on a hit
    /// or a non-replacing fill.
    pub fn would_evict(&self, block: MemBlockId) -> Option<MemBlockId> {
        let set = (block.0 % u64::from(self.n_sets)) as usize;
        let ways = &self.sets[set];
        if ways.contains(&block) || ways.len() < self.assoc as usize {
            None
        } else {
            ways.last().copied()
        }
    }
}

impl fmt::Display for ConcreteState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ways) in self.sets.iter().enumerate() {
            let cells: Vec<String> = ways.iter().map(|b| b.to_string()).collect();
            writeln!(f, "set {i}: [{}]", cells.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_set_two_way() -> ConcreteState {
        // 2-way, 16 B blocks, 32 B capacity → a single set.
        ConcreteState::new(&CacheConfig::new(2, 16, 32).unwrap())
    }

    #[test]
    fn miss_then_hit() {
        let mut c = one_set_two_way();
        assert_eq!(
            c.access(MemBlockId(1)),
            AccessOutcome::Miss { evicted: None }
        );
        assert_eq!(c.access(MemBlockId(1)), AccessOutcome::Hit);
        assert!(c.contains(MemBlockId(1)));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = one_set_two_way();
        c.access(MemBlockId(1));
        c.access(MemBlockId(2));
        // 1 is LRU; accessing 3 must evict 1.
        assert_eq!(
            c.access(MemBlockId(3)),
            AccessOutcome::Miss {
                evicted: Some(MemBlockId(1))
            }
        );
        assert_eq!(c.set(0), &[MemBlockId(3), MemBlockId(2)]);
    }

    #[test]
    fn hit_promotes_to_mru() {
        let mut c = one_set_two_way();
        c.access(MemBlockId(1));
        c.access(MemBlockId(2)); // [2, 1]
        c.access(MemBlockId(1)); // [1, 2]
        assert_eq!(
            c.access(MemBlockId(3)).evicted(),
            Some(MemBlockId(2)) // 2 became LRU after 1 was promoted
        );
    }

    #[test]
    fn blocks_collects_all_sets() {
        let cfg = CacheConfig::new(1, 16, 32).unwrap(); // 2 direct-mapped sets
        let mut c = ConcreteState::new(&cfg);
        c.access(MemBlockId(0)); // set 0
        c.access(MemBlockId(1)); // set 1
        let blocks = c.blocks();
        assert!(blocks.contains(&MemBlockId(0)));
        assert!(blocks.contains(&MemBlockId(1)));
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn would_evict_is_consistent_with_access() {
        let mut c = one_set_two_way();
        c.access(MemBlockId(1));
        c.access(MemBlockId(2));
        let predicted = c.would_evict(MemBlockId(5));
        assert_eq!(c.access(MemBlockId(5)).evicted(), predicted);
        // Hit case predicts no eviction.
        assert_eq!(c.would_evict(MemBlockId(5)), None);
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let cfg = CacheConfig::new(1, 16, 64).unwrap(); // 4 sets, direct-mapped
        let mut c = ConcreteState::new(&cfg);
        c.access(MemBlockId(0));
        c.access(MemBlockId(1));
        c.access(MemBlockId(2));
        c.access(MemBlockId(3));
        // All four coexist; a fifth conflicting block evicts only set 0.
        assert_eq!(c.access(MemBlockId(4)).evicted(), Some(MemBlockId(0)));
        assert!(c.contains(MemBlockId(1)));
        assert!(c.contains(MemBlockId(2)));
        assert!(c.contains(MemBlockId(3)));
    }
}
