//! Exact cache states (`c : L → S` in the paper's Section 3.1), for
//! every supported [`ReplacementPolicy`].

use std::collections::BTreeSet;
use std::fmt;

use rtpf_isa::MemBlockId;

use crate::config::CacheConfig;
use crate::policy::ReplacementPolicy;

/// Result of one concrete cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessOutcome {
    /// The block was already cached (Property 1).
    Hit,
    /// The block was fetched; `evicted` is the replaced block, if the set
    /// was full (Properties 2 and 3).
    Miss {
        /// Block replaced to make room, if any.
        evicted: Option<MemBlockId>,
    },
}

impl AccessOutcome {
    /// Whether the access hit.
    #[inline]
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// The evicted block, if this was a replacing miss.
    pub fn evicted(&self) -> Option<MemBlockId> {
        match self {
            AccessOutcome::Hit => None,
            AccessOutcome::Miss { evicted } => *evicted,
        }
    }
}

/// A concrete state of a set-associative cache under the configuration's
/// [`ReplacementPolicy`].
///
/// The per-set block order is policy-defined:
///
/// * **LRU** — most-recently-used first, matching the `[MRU, LRU]`
///   notation of the paper's Figure 1 (hits promote to the front);
/// * **FIFO** — most-recently-*inserted* first (hits do not reorder);
/// * **tree-PLRU** — physical way order (index = way number), with the
///   tree's direction bits kept beside the set.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConcreteState {
    /// Per set: blocks in the policy-defined order above; length ≤
    /// associativity.
    sets: Vec<Vec<MemBlockId>>,
    /// Per set for tree-PLRU: heap-indexed direction bits (bit `i` is
    /// internal node `i`, root at 1; 0 = victim path goes left). Empty for
    /// LRU and FIFO.
    plru_bits: Vec<u64>,
    policy: ReplacementPolicy,
    assoc: u32,
    n_sets: u32,
}

impl ConcreteState {
    /// An all-invalid cache (`ĉ_I`) for the given configuration.
    pub fn new(config: &CacheConfig) -> Self {
        let policy = config.policy();
        ConcreteState {
            sets: vec![Vec::with_capacity(config.assoc() as usize); config.n_sets() as usize],
            plru_bits: match policy {
                ReplacementPolicy::Plru => vec![0; config.n_sets() as usize],
                _ => Vec::new(),
            },
            policy,
            assoc: config.assoc(),
            n_sets: config.n_sets(),
        }
    }

    /// The update function `U` (Definition 1): reference `block`, applying
    /// the configured replacement policy, and report the outcome.
    pub fn access(&mut self, block: MemBlockId) -> AccessOutcome {
        let set = (block.0 % u64::from(self.n_sets)) as usize;
        match self.policy {
            ReplacementPolicy::Lru => self.access_lru(set, block),
            ReplacementPolicy::Fifo => self.access_fifo(set, block),
            ReplacementPolicy::Plru => self.access_plru(set, block),
        }
    }

    fn access_lru(&mut self, set: usize, block: MemBlockId) -> AccessOutcome {
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&b| b == block) {
            // Hit: promote to MRU.
            let b = ways.remove(pos);
            ways.insert(0, b);
            return AccessOutcome::Hit;
        }
        let evicted = if ways.len() == self.assoc as usize {
            ways.pop()
        } else {
            None
        };
        ways.insert(0, block);
        AccessOutcome::Miss { evicted }
    }

    fn access_fifo(&mut self, set: usize, block: MemBlockId) -> AccessOutcome {
        let ways = &mut self.sets[set];
        if ways.contains(&block) {
            // Hit: FIFO never reorders on a hit.
            return AccessOutcome::Hit;
        }
        // Miss: evict the oldest insertion (the back), insert at the front.
        let evicted = if ways.len() == self.assoc as usize {
            ways.pop()
        } else {
            None
        };
        ways.insert(0, block);
        AccessOutcome::Miss { evicted }
    }

    fn access_plru(&mut self, set: usize, block: MemBlockId) -> AccessOutcome {
        let assoc = self.assoc as usize;
        if let Some(way) = self.sets[set].iter().position(|&b| b == block) {
            plru_touch(&mut self.plru_bits[set], assoc, way);
            return AccessOutcome::Hit;
        }
        if self.sets[set].len() < assoc {
            // Fill an invalid way first (lowest free index).
            let way = self.sets[set].len();
            self.sets[set].push(block);
            plru_touch(&mut self.plru_bits[set], assoc, way);
            return AccessOutcome::Miss { evicted: None };
        }
        let way = plru_victim(self.plru_bits[set], assoc);
        let evicted = std::mem::replace(&mut self.sets[set][way], block);
        plru_touch(&mut self.plru_bits[set], assoc, way);
        AccessOutcome::Miss {
            evicted: Some(evicted),
        }
    }

    /// Whether `block` is currently cached.
    pub fn contains(&self, block: MemBlockId) -> bool {
        let set = (block.0 % u64::from(self.n_sets)) as usize;
        self.sets[set].contains(&block)
    }

    /// The set of all cached blocks, `B(ĉ)` (Definition 9).
    pub fn blocks(&self) -> BTreeSet<MemBlockId> {
        self.sets.iter().flatten().copied().collect()
    }

    /// Blocks of one set, in the policy-defined order (MRU first for LRU,
    /// newest insertion first for FIFO, way order for tree-PLRU).
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn set(&self, set: usize) -> &[MemBlockId] {
        &self.sets[set]
    }

    /// The replacement policy this state runs under.
    #[inline]
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Number of sets.
    #[inline]
    pub fn n_sets(&self) -> u32 {
        self.n_sets
    }

    /// Associativity.
    #[inline]
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Predicts, without mutating, which block an access to `block` would
    /// replace (Property 3 applied prospectively). Returns `None` on a hit
    /// or a non-replacing fill.
    pub fn would_evict(&self, block: MemBlockId) -> Option<MemBlockId> {
        let set = (block.0 % u64::from(self.n_sets)) as usize;
        let ways = &self.sets[set];
        if ways.contains(&block) || ways.len() < self.assoc as usize {
            return None;
        }
        match self.policy {
            // LRU evicts the back (LRU position); FIFO the back (oldest
            // insertion).
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => ways.last().copied(),
            ReplacementPolicy::Plru => {
                Some(ways[plru_victim(self.plru_bits[set], self.assoc as usize)])
            }
        }
    }
}

/// The way a full tree-PLRU set would evict: follow the direction bits
/// from the root (heap node 1) to a leaf. Leaf `assoc + w` is way `w`.
/// Shared with the refinement stage's projected set states
/// ([`crate::refine::SetState`]), which must replay the exact semantics.
pub(crate) fn plru_victim(bits: u64, assoc: usize) -> usize {
    let mut node = 1;
    while node < assoc {
        node = 2 * node + ((bits >> node) & 1) as usize;
    }
    node - assoc
}

/// After an access to `way`, point every direction bit on the way's
/// root-to-leaf path *away* from it (the standard tree-PLRU promotion).
pub(crate) fn plru_touch(bits: &mut u64, assoc: usize, way: usize) {
    let mut node = assoc + way;
    while node > 1 {
        let parent = node / 2;
        if node == 2 * parent {
            *bits |= 1 << parent; // came from the left: victim path goes right
        } else {
            *bits &= !(1 << parent); // came from the right: victim path goes left
        }
        node = parent;
    }
}

impl fmt::Display for ConcreteState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ways) in self.sets.iter().enumerate() {
            let cells: Vec<String> = ways.iter().map(|b| b.to_string()).collect();
            writeln!(f, "set {i}: [{}]", cells.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_set_two_way() -> ConcreteState {
        // 2-way, 16 B blocks, 32 B capacity → a single set.
        ConcreteState::new(&CacheConfig::new(2, 16, 32).unwrap())
    }

    #[test]
    fn miss_then_hit() {
        let mut c = one_set_two_way();
        assert_eq!(
            c.access(MemBlockId(1)),
            AccessOutcome::Miss { evicted: None }
        );
        assert_eq!(c.access(MemBlockId(1)), AccessOutcome::Hit);
        assert!(c.contains(MemBlockId(1)));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = one_set_two_way();
        c.access(MemBlockId(1));
        c.access(MemBlockId(2));
        // 1 is LRU; accessing 3 must evict 1.
        assert_eq!(
            c.access(MemBlockId(3)),
            AccessOutcome::Miss {
                evicted: Some(MemBlockId(1))
            }
        );
        assert_eq!(c.set(0), &[MemBlockId(3), MemBlockId(2)]);
    }

    #[test]
    fn hit_promotes_to_mru() {
        let mut c = one_set_two_way();
        c.access(MemBlockId(1));
        c.access(MemBlockId(2)); // [2, 1]
        c.access(MemBlockId(1)); // [1, 2]
        assert_eq!(
            c.access(MemBlockId(3)).evicted(),
            Some(MemBlockId(2)) // 2 became LRU after 1 was promoted
        );
    }

    #[test]
    fn blocks_collects_all_sets() {
        let cfg = CacheConfig::new(1, 16, 32).unwrap(); // 2 direct-mapped sets
        let mut c = ConcreteState::new(&cfg);
        c.access(MemBlockId(0)); // set 0
        c.access(MemBlockId(1)); // set 1
        let blocks = c.blocks();
        assert!(blocks.contains(&MemBlockId(0)));
        assert!(blocks.contains(&MemBlockId(1)));
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn would_evict_is_consistent_with_access() {
        let mut c = one_set_two_way();
        c.access(MemBlockId(1));
        c.access(MemBlockId(2));
        let predicted = c.would_evict(MemBlockId(5));
        assert_eq!(c.access(MemBlockId(5)).evicted(), predicted);
        // Hit case predicts no eviction.
        assert_eq!(c.would_evict(MemBlockId(5)), None);
    }

    fn one_set(assoc: u32, policy: ReplacementPolicy) -> ConcreteState {
        let cfg = CacheConfig::new(assoc, 16, assoc * 16)
            .unwrap()
            .with_policy(policy)
            .unwrap();
        ConcreteState::new(&cfg)
    }

    #[test]
    fn fifo_hit_does_not_reorder() {
        let mut c = one_set(2, ReplacementPolicy::Fifo);
        c.access(MemBlockId(1));
        c.access(MemBlockId(2)); // insertion order: [2, 1]
        assert_eq!(c.access(MemBlockId(1)), AccessOutcome::Hit);
        // Under LRU the hit would protect 1; FIFO still evicts it first.
        assert_eq!(c.access(MemBlockId(3)).evicted(), Some(MemBlockId(1)));
        assert_eq!(c.set(0), &[MemBlockId(3), MemBlockId(2)]);
    }

    #[test]
    fn fifo_evicts_in_insertion_order() {
        let mut c = one_set(2, ReplacementPolicy::Fifo);
        c.access(MemBlockId(1));
        c.access(MemBlockId(2));
        assert_eq!(c.access(MemBlockId(3)).evicted(), Some(MemBlockId(1)));
        assert_eq!(c.access(MemBlockId(4)).evicted(), Some(MemBlockId(2)));
        assert_eq!(c.would_evict(MemBlockId(5)), Some(MemBlockId(3)));
    }

    #[test]
    fn plru_victim_follows_tree_bits() {
        // 4-way, single set. Fill a,b,c,d; every fill touches its way, so
        // the bits end pointing at way 0's subtree... exercise the classic
        // sequence: after filling 0..3 the victim is way 0.
        let mut c = one_set(4, ReplacementPolicy::Plru);
        for b in [10u64, 11, 12, 13] {
            assert!(!c.access(MemBlockId(4 * b)).is_hit());
        }
        // Fill order 0,1,2,3 leaves the tree pointing at way 0.
        assert_eq!(c.would_evict(MemBlockId(400)), Some(MemBlockId(40)));
        // Touching way 0 re-protects it; the victim flips to the other
        // subtree (way 2, least recently touched there).
        assert_eq!(c.access(MemBlockId(40)), AccessOutcome::Hit);
        assert_eq!(c.would_evict(MemBlockId(400)), Some(MemBlockId(48)));
        let out = c.access(MemBlockId(400));
        assert_eq!(out.evicted(), Some(MemBlockId(48)));
        assert!(c.contains(MemBlockId(400)));
        assert!(c.contains(MemBlockId(40)));
    }

    #[test]
    fn plru_retains_last_log2_plus_one_distinct_blocks() {
        // The competitiveness fact the abstract face relies on: a tree-
        // PLRU(4) set always holds its last 3 pairwise distinct accessed
        // blocks. Stress it with a pseudo-random access string.
        let mut c = one_set(4, ReplacementPolicy::Plru);
        let mut recent: Vec<MemBlockId> = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = MemBlockId(4 * (x % 7)); // 7 distinct blocks, one set
            c.access(b);
            recent.retain(|&r| r != b);
            recent.insert(0, b);
            recent.truncate(3);
            for &r in &recent {
                assert!(c.contains(r), "tree-PLRU lost recent block {r}");
            }
        }
    }

    #[test]
    fn would_evict_matches_access_for_all_policies() {
        for policy in ReplacementPolicy::ALL {
            let mut c = one_set(4, policy);
            let mut x = 7u64;
            for _ in 0..2_000 {
                x = x.wrapping_mul(48271) % 0x7fffffff;
                let b = MemBlockId(4 * (x % 9));
                let predicted = c.would_evict(b);
                assert_eq!(c.access(b).evicted(), predicted, "{policy}");
            }
        }
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let cfg = CacheConfig::new(1, 16, 64).unwrap(); // 4 sets, direct-mapped
        let mut c = ConcreteState::new(&cfg);
        c.access(MemBlockId(0));
        c.access(MemBlockId(1));
        c.access(MemBlockId(2));
        c.access(MemBlockId(3));
        // All four coexist; a fifth conflicting block evicts only set 0.
        assert_eq!(c.access(MemBlockId(4)).evicted(), Some(MemBlockId(0)));
        assert!(c.contains(MemBlockId(1)));
        assert!(c.contains(MemBlockId(2)));
        assert!(c.contains(MemBlockId(3)));
    }
}
