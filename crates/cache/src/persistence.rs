//! Persistence analysis: which blocks are never evicted once loaded.
//!
//! The third classic analysis of the Ferdinand framework (alongside must
//! and may): a block that is *persistent* at a reference can miss at most
//! once over the whole execution — every later access hits. This powers
//! the "first miss" classification WCET analyzers use to avoid charging a
//! loop-invariant block `bound × miss` cycles.
//!
//! The abstract state extends the must domain with a virtual ⊤ age: a
//! block pushed past the associativity is *possibly evicted* and parked
//! in ⊤ (it never leaves — persistence is a once-broken-always-broken
//! property). A block is persistent iff it is tracked and not in ⊤.

use std::collections::BTreeSet;
use std::fmt;

use rtpf_isa::MemBlockId;

use crate::config::CacheConfig;

/// Abstract persistence state.
///
/// Like [`MustState`](crate::MustState), the domain runs at the
/// configuration policy's *effective* associativity: exact for LRU, and
/// the competitiveness-reduced window for FIFO (1) and tree-PLRU
/// (log2(k) + 1). A block whose age never reaches the effective window on
/// any path is resident at every point under the real policy too, so the
/// first-miss guarantee carries over.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PersistenceState {
    /// `sets[s][h]` = blocks of set `s` at max-age `h`; bucket `assoc`
    /// (the effective associativity) is the virtual ⊤ ("may have been
    /// evicted").
    sets: Vec<Vec<Vec<MemBlockId>>>,
    assoc: u32,
    n_sets: u32,
}

impl PersistenceState {
    /// The empty persistence state (no block tracked yet).
    pub fn new(config: &CacheConfig) -> Self {
        let assoc = config.policy().must_ways(config.assoc());
        PersistenceState {
            sets: vec![vec![Vec::new(); assoc as usize + 1]; config.n_sets() as usize],
            assoc,
            n_sets: config.n_sets(),
        }
    }

    /// Whether `block` is persistent here: it has been referenced on every
    /// path reaching this point... (tracked) and was never possibly
    /// evicted.
    pub fn is_persistent(&self, block: MemBlockId) -> bool {
        matches!(self.age(block), Some(h) if h < self.assoc)
    }

    /// Max-age of `block` if tracked; `Some(assoc)` means ⊤.
    pub fn age(&self, block: MemBlockId) -> Option<u32> {
        let set = (block.0 % u64::from(self.n_sets)) as usize;
        for (h, bucket) in self.sets[set].iter().enumerate() {
            if bucket.binary_search(&block).is_ok() {
                return Some(h as u32);
            }
        }
        None
    }

    /// Abstract update: the referenced block becomes age 0 (unless it was
    /// already possibly-evicted — ⊤ is sticky); younger blocks age by one;
    /// blocks aging past the associativity fall into ⊤ and stay there.
    pub fn update(&mut self, block: MemBlockId) {
        let set = (block.0 % u64::from(self.n_sets)) as usize;
        let a = self.assoc as usize;
        let old = self.age(block).map(|h| h as usize);
        let buckets = &mut self.sets[set];
        match old {
            Some(h) if h == a => {
                // ⊤ is sticky: the block was possibly evicted once; its
                // persistence is gone for good. Aging others is still
                // required (the access occupies a way).
                age_range(buckets, a);
            }
            Some(h) => {
                if let Ok(pos) = buckets[h].binary_search(&block) {
                    buckets[h].remove(pos);
                }
                age_range(buckets, h);
                insert_sorted(&mut buckets[0], block);
            }
            None => {
                age_range(buckets, a);
                insert_sorted(&mut buckets[0], block);
            }
        }
    }

    /// Persistence join: union, keeping the *maximal* age (⊤ wins).
    pub fn join(&self, other: &PersistenceState) -> PersistenceState {
        debug_assert_eq!(self.n_sets, other.n_sets);
        debug_assert_eq!(self.assoc, other.assoc);
        let mut out = PersistenceState {
            sets: vec![vec![Vec::new(); self.assoc as usize + 1]; self.n_sets as usize],
            assoc: self.assoc,
            n_sets: self.n_sets,
        };
        for s in 0..self.n_sets as usize {
            let mut blocks: BTreeSet<MemBlockId> = BTreeSet::new();
            for bucket in self.sets[s].iter().chain(other.sets[s].iter()) {
                blocks.extend(bucket.iter().copied());
            }
            for b in blocks {
                let ha = self.age_in_set(s, b);
                let hb = other.age_in_set(s, b);
                let age = match (ha, hb) {
                    (Some(x), Some(y)) => x.max(y),
                    (Some(x), None) | (None, Some(x)) => x,
                    (None, None) => unreachable!("block came from a bucket"),
                } as usize;
                insert_sorted(&mut out.sets[s][age], b);
            }
        }
        out
    }

    /// All tracked blocks with their ages (`assoc` = ⊤).
    pub fn iter(&self) -> impl Iterator<Item = (MemBlockId, u32)> + '_ {
        self.sets.iter().flat_map(|set| {
            set.iter()
                .enumerate()
                .flat_map(|(h, bucket)| bucket.iter().map(move |&b| (b, h as u32)))
        })
    }

    /// Number of persistent (non-⊤) blocks.
    pub fn persistent_count(&self) -> usize {
        self.sets
            .iter()
            .map(|set| {
                set[..self.assoc as usize]
                    .iter()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    fn age_in_set(&self, set: usize, block: MemBlockId) -> Option<u32> {
        for (h, bucket) in self.sets[set].iter().enumerate() {
            if bucket.binary_search(&block).is_ok() {
                return Some(h as u32);
            }
        }
        None
    }
}

/// Ages buckets `0..limit` by one step; anything reaching bucket
/// `assoc` (the last) merges into ⊤.
fn age_range(buckets: &mut [Vec<MemBlockId>], limit: usize) {
    for i in (1..=limit).rev() {
        let moved = std::mem::take(&mut buckets[i - 1]);
        for b in moved {
            insert_sorted(&mut buckets[i], b);
        }
    }
}

fn insert_sorted(v: &mut Vec<MemBlockId>, b: MemBlockId) {
    if let Err(pos) = v.binary_search(&b) {
        v.insert(pos, b);
    }
}

impl fmt::Display for PersistenceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (s, set) in self.sets.iter().enumerate() {
            write!(f, "set {s}:")?;
            for (h, bucket) in set.iter().enumerate() {
                let cells: Vec<String> = bucket.iter().map(|b| b.to_string()).collect();
                let label = if h == self.assoc as usize {
                    "⊤".to_string()
                } else {
                    format!("age{h}")
                };
                write!(f, " {label}={{{}}}", cells.join(","))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig::new(2, 16, 32).unwrap() // one set, 2-way
    }

    #[test]
    fn freshly_loaded_block_is_persistent() {
        let mut p = PersistenceState::new(&cfg());
        p.update(MemBlockId(1));
        assert!(p.is_persistent(MemBlockId(1)));
        assert_eq!(p.persistent_count(), 1);
    }

    #[test]
    fn overflow_parks_blocks_in_top_forever() {
        let mut p = PersistenceState::new(&cfg());
        p.update(MemBlockId(1));
        p.update(MemBlockId(2));
        p.update(MemBlockId(3)); // 1 may now be evicted
        assert!(!p.is_persistent(MemBlockId(1)));
        assert!(p.is_persistent(MemBlockId(2)));
        assert!(p.is_persistent(MemBlockId(3)));
        // Re-touching 1 does not resurrect persistence.
        p.update(MemBlockId(1));
        assert!(!p.is_persistent(MemBlockId(1)));
    }

    #[test]
    fn loop_working_set_within_assoc_stays_persistent() {
        let mut p = PersistenceState::new(&cfg());
        for _ in 0..10 {
            p.update(MemBlockId(1));
            p.update(MemBlockId(2));
        }
        assert!(p.is_persistent(MemBlockId(1)));
        assert!(p.is_persistent(MemBlockId(2)));
    }

    #[test]
    fn join_keeps_top_sticky() {
        let mut a = PersistenceState::new(&cfg());
        a.update(MemBlockId(1)); // persistent on the left path
        let mut b = PersistenceState::new(&cfg());
        b.update(MemBlockId(1));
        b.update(MemBlockId(2));
        b.update(MemBlockId(3)); // 1 hit ⊤ on the right path
        let j = a.join(&b);
        assert!(!j.is_persistent(MemBlockId(1)), "⊤ must win the join");
        assert!(j.age(MemBlockId(2)).is_some());
    }

    #[test]
    fn join_is_union_unlike_must() {
        let mut a = PersistenceState::new(&cfg());
        a.update(MemBlockId(1));
        let b = PersistenceState::new(&cfg());
        let j = a.join(&b);
        // Persistence tracks "was loaded on some path and never evicted";
        // a one-sided block stays tracked.
        assert!(j.is_persistent(MemBlockId(1)));
    }

    #[test]
    fn soundness_vs_concrete_eviction() {
        use crate::concrete::ConcreteState;
        // If persistence claims a block was never evicted, the concrete
        // run must indeed still hold it (whenever it was accessed).
        let config = CacheConfig::new(2, 16, 64).unwrap();
        let mut c = ConcreteState::new(&config);
        let mut p = PersistenceState::new(&config);
        for &b in &[1u64, 5, 9, 1, 13, 5, 17, 1, 21, 9] {
            c.access(MemBlockId(b));
            p.update(MemBlockId(b));
            for (blk, age) in p.iter() {
                if age < config.assoc() {
                    assert!(
                        c.contains(blk),
                        "persistent block {blk} missing from concrete cache"
                    );
                }
            }
        }
    }
}
