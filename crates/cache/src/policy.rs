//! Replacement policies and their two faces.
//!
//! A [`ReplacementPolicy`] describes one hardware replacement scheme and
//! exposes it to the rest of the stack through two faces:
//!
//! * the **concrete face** — the exact per-set update implemented by
//!   [`ConcreteState`](crate::ConcreteState) (used by the trace simulator,
//!   the optimizer's reverse analysis, and the soundness audit's walks);
//! * the **abstract face** — the parameters the must/may/persistence
//!   domains run under, expressed as *effective associativities* via
//!   relative competitiveness to LRU (Reineke & Grund).
//!
//! The LRU abstract face is exact (effective ways = real ways); FIFO and
//! tree-PLRU reuse the LRU domains with a smaller effective associativity:
//!
//! * **FIFO(k)** — must/persistence run as LRU(1). A block with must-age 0
//!   was the set's last access on every path, so it is resident under FIFO
//!   (a miss fetched it; a hit found it, and FIFO never reorders), and any
//!   further same-set access drops the guarantee. The may side has no
//!   finite LRU reduction: a FIFO block ages only on *misses*, which the
//!   abstract domain cannot distinguish from hits, so possibly-cached
//!   blocks never age out ([`ReplacementPolicy::UNBOUNDED`]).
//! * **tree-PLRU(k)** — must/persistence run as LRU(log2(k) + 1): a
//!   tree-PLRU set always retains its last log2(k) + 1 pairwise distinct
//!   accessed blocks, because every access flips the tree bits on its path
//!   away from the block. The may side is unbounded like FIFO's (an
//!   unlucky bit pattern can protect a block indefinitely).
//!
//! Both reductions are *sound but less precise* than the exact LRU
//! domains: fewer always-hit and (for the unbounded may) fewer always-miss
//! classifications. See DESIGN.md §10 for the tradeoff discussion.

use std::fmt;

/// A cache replacement policy, selectable per [`CacheConfig`](crate::CacheConfig).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used: the paper's policy, analyzed exactly.
    #[default]
    Lru,
    /// First-in first-out (round-robin): hits do not reorder.
    Fifo,
    /// Tree-based pseudo-LRU: one direction bit per internal tree node.
    Plru,
}

impl ReplacementPolicy {
    /// Every supported policy, in CLI/display order.
    pub const ALL: [ReplacementPolicy; 3] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Plru,
    ];

    /// Sentinel effective associativity of an *unbounded* may domain:
    /// possibly-cached blocks never age out, so only blocks that were
    /// never accessed on any path classify as always-miss.
    pub const UNBOUNDED: u32 = u32::MAX;

    /// The CLI / fingerprint name.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::Plru => "plru",
        }
    }

    /// Parses a CLI-style policy name (case-insensitive).
    pub fn parse(s: &str) -> Option<ReplacementPolicy> {
        Self::ALL
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(s))
    }

    /// Stable one-byte identifier for content fingerprints.
    pub fn tag(self) -> u8 {
        match self {
            ReplacementPolicy::Lru => 0,
            ReplacementPolicy::Fifo => 1,
            ReplacementPolicy::Plru => 2,
        }
    }

    /// Effective associativity of the must and persistence domains for a
    /// set of `assoc` real ways (the competitiveness reduction above).
    /// `const` so the empty abstract states can be built in `const`/`static`
    /// contexts.
    pub const fn must_ways(self, assoc: u32) -> u32 {
        match self {
            ReplacementPolicy::Lru => assoc,
            ReplacementPolicy::Fifo => 1,
            // log2(assoc) + 1; assoc is validated as a power of two.
            ReplacementPolicy::Plru => assoc.trailing_zeros() + 1,
        }
    }

    /// Effective associativity of the may domain
    /// ([`UNBOUNDED`](Self::UNBOUNDED) when no finite LRU reduction
    /// exists).
    pub const fn may_ways(self, assoc: u32) -> u32 {
        match self {
            ReplacementPolicy::Lru => assoc,
            ReplacementPolicy::Fifo | ReplacementPolicy::Plru => Self::UNBOUNDED,
        }
    }
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_all_names() {
        for p in ReplacementPolicy::ALL {
            assert_eq!(ReplacementPolicy::parse(p.name()), Some(p));
            assert_eq!(ReplacementPolicy::parse(&p.name().to_uppercase()), Some(p));
        }
        assert_eq!(ReplacementPolicy::parse("mru"), None);
        assert_eq!(ReplacementPolicy::parse(""), None);
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }

    #[test]
    fn tags_are_distinct() {
        let mut tags: Vec<u8> = ReplacementPolicy::ALL.iter().map(|p| p.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), ReplacementPolicy::ALL.len());
    }

    #[test]
    fn effective_ways_follow_the_reductions() {
        use ReplacementPolicy::*;
        for a in [1u32, 2, 4, 8] {
            assert_eq!(Lru.must_ways(a), a);
            assert_eq!(Lru.may_ways(a), a);
            assert_eq!(Fifo.must_ways(a), 1);
            assert_eq!(Fifo.may_ways(a), ReplacementPolicy::UNBOUNDED);
            assert_eq!(Plru.may_ways(a), ReplacementPolicy::UNBOUNDED);
        }
        // log2(k) + 1 for tree-PLRU.
        assert_eq!(Plru.must_ways(1), 1);
        assert_eq!(Plru.must_ways(2), 2);
        assert_eq!(Plru.must_ways(4), 3);
        assert_eq!(Plru.must_ways(8), 4);
    }
}
