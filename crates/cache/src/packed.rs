//! Bit-packed entry words for the abstract cache domains.
//!
//! [`MustState`](crate::MustState) and [`MayState`](crate::MayState) store
//! one `u64` per tracked block instead of a `(MemBlockId, u32)` pair,
//! halving the state footprint and making every hot operation a plain
//! word compare/add (DESIGN.md §11 describes the layout and the soundness
//! of the width clamps):
//!
//! ```text
//!   63            44 43                       8 7          0
//!  ┌────────────────┬──────────────────────────┬────────────┐
//!  │ group (20 bit) │ block id        (36 bit) │ age (8 bit)│
//!  └────────────────┴──────────────────────────┴────────────┘
//! ```
//!
//! * **age** — the domain's age bound for the block. Effective
//!   associativities always fit 8 bits in practice (Table 2 tops out at
//!   4 ways; tree-PLRU is capped at 64); see [`MAX_AGE`] for how absurd
//!   geometries are clamped soundly.
//! * **block id** — the memory block. Block ids derive from 32-bit
//!   addresses divided by the block size, so 36 bits leave headroom even
//!   for synthetic test ids.
//! * **group** — the block's cache set (masked to 20 bits). Placing the
//!   set in the *top* bits makes the sorted word order group same-set
//!   entries contiguously, so an update touches only its set's short run
//!   of words instead of scanning the whole state. The group is purely an
//!   ordering accelerator: every scan re-checks the exact set from the
//!   block id, so a >2²⁰-set geometry (where groups can collide) stays
//!   correct, merely unaccelerated.
//!
//! Sorting by the raw word sorts by `(group, block, age)`; each block
//! appears at most once, so the word order is a total order on blocks and
//! the shifted word (`word >> AGE_BITS`) is the binary-search key. Joins
//! are sorted merges where the equal-key cases reduce to single `u64`
//! `min`/`max` ops, and whole-state equality is a `memcmp`.

/// Bits of the age lane.
pub(crate) const AGE_BITS: u32 = 8;
/// Mask of the age lane.
pub(crate) const AGE_MASK: u64 = (1 << AGE_BITS) - 1;
/// Bits of the block-id lane.
pub(crate) const BLOCK_BITS: u32 = 36;
/// Mask of the block-id lane (after shifting the age off).
pub(crate) const BLOCK_MASK: u64 = (1 << BLOCK_BITS) - 1;
/// Shift of the group (set) lane.
pub(crate) const GROUP_SHIFT: u32 = AGE_BITS + BLOCK_BITS;
/// Mask of the group lane.
pub(crate) const GROUP_MASK: u64 = (1 << (64 - GROUP_SHIFT)) - 1;
/// Largest age the 8-bit lane can store. Effective associativities above
/// this are clamped to it by the must domain (running must at *fewer*
/// ways is the relative-competitiveness argument — sound, fewer
/// guarantees) and widened to
/// [`UNBOUNDED`](crate::ReplacementPolicy::UNBOUNDED) by the may domain
/// (never ruling out eviction is sound, fewer always-miss answers).
pub(crate) const MAX_AGE: u32 = AGE_MASK as u32;

/// The binary-search key of a block: `(group, block)`, i.e. the packed
/// word without its age lane.
///
/// # Panics
///
/// Panics if the block id exceeds the 36-bit lane; ids derive from 32-bit
/// addresses, so this is unreachable through the ISA.
#[inline]
pub(crate) fn sort_key(n_sets: u32, block: u64) -> u64 {
    assert!(
        block <= BLOCK_MASK,
        "block id {block} exceeds the packed 36-bit lane"
    );
    // n_sets is validated as a power of two, so the set is a mask.
    let set = block & (n_sets as u64 - 1);
    ((set & GROUP_MASK) << BLOCK_BITS) | block
}

/// The block id stored in a word.
#[inline]
pub(crate) fn block_of(word: u64) -> u64 {
    (word >> AGE_BITS) & BLOCK_MASK
}

/// The age stored in a word.
#[inline]
pub(crate) fn age_of(word: u64) -> u32 {
    (word & AGE_MASK) as u32
}

/// The binary-search key of a stored word.
#[inline]
pub(crate) fn key_of(word: u64) -> u64 {
    word >> AGE_BITS
}

/// Binary search for a block's word in a sorted packed vector.
#[inline]
pub(crate) fn find(words: &[u64], key: u64) -> Result<usize, usize> {
    words.binary_search_by(|w| key_of(*w).cmp(&key))
}

/// The contiguous index range of `key`'s group around a search position
/// (`Ok` hit index or `Err` insertion point). Group runs are short — at
/// most the effective associativity for bounded domains — so linear
/// expansion beats two extra binary searches.
#[inline]
pub(crate) fn group_range(words: &[u64], key: u64, anchor: Result<usize, usize>) -> (usize, usize) {
    let group = key >> BLOCK_BITS;
    let pos = match anchor {
        Ok(i) | Err(i) => i,
    };
    let mut lo = pos;
    while lo > 0 && words[lo - 1] >> GROUP_SHIFT == group {
        lo -= 1;
    }
    let mut hi = pos;
    while hi < words.len() && words[hi] >> GROUP_SHIFT == group {
        hi += 1;
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_order_groups_sets() {
        // 4 sets: blocks 0..8 map to sets 0,1,2,3,0,1,2,3. Sorted keys
        // must interleave by set, not by block.
        let mut keys: Vec<u64> = (0..8u64).map(|b| sort_key(4, b)).collect();
        keys.sort_unstable();
        let blocks: Vec<u64> = keys.iter().map(|k| k & BLOCK_MASK).collect();
        assert_eq!(blocks, vec![0, 4, 1, 5, 2, 6, 3, 7]);
    }

    #[test]
    fn pack_roundtrips() {
        let w = (sort_key(8, 21) << AGE_BITS) | 3;
        assert_eq!(block_of(w), 21);
        assert_eq!(age_of(w), 3);
        assert_eq!(key_of(w), sort_key(8, 21));
    }

    #[test]
    #[should_panic(expected = "36-bit lane")]
    fn oversized_block_id_is_rejected() {
        sort_key(4, 1 << BLOCK_BITS);
    }

    #[test]
    fn group_range_finds_the_set_run() {
        // 2 sets; blocks 0,2,4 are set 0, blocks 1,3 set 1.
        let mut words: Vec<u64> = [0u64, 1, 2, 3, 4]
            .iter()
            .map(|&b| sort_key(2, b) << AGE_BITS)
            .collect();
        words.sort_unstable();
        let key = sort_key(2, 2);
        let (lo, hi) = group_range(&words, key, find(&words, key));
        assert_eq!((lo, hi), (0, 3), "set-0 run is blocks 0,2,4");
        let key1 = sort_key(2, 3);
        let (lo, hi) = group_range(&words, key1, find(&words, key1));
        assert_eq!((lo, hi), (3, 5), "set-1 run is blocks 1,3");
    }
}
