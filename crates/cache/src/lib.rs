//! Concrete and abstract set-associative instruction-cache models, generic
//! over the replacement policy (LRU, FIFO, tree-PLRU).
//!
//! This crate substitutes for the cache semantics of Ferdinand & Wilhelm
//! (reference [8] of the paper) that the authors' WCET analyzer builds on,
//! extended with a [`ReplacementPolicy`] axis:
//!
//! * [`CacheConfig`] — geometry `(associativity, block bytes, capacity)`
//!   plus the replacement policy (LRU by default; select another with
//!   [`CacheConfig::with_policy`]), including
//!   [`CacheConfig::paper_configs`], the paper's Table 2 set k1..k36;
//! * [`ConcreteState`] — an exact cache state (`c : L → S`) under the
//!   configured policy, used by the trace simulator, the optimizer's
//!   reverse analysis, and the soundness audit's reference walks;
//! * [`MustState`] / [`MayState`] / [`PersistenceState`] — abstract cache
//!   states used to classify references as always-hit / always-miss /
//!   first-miss during WCET analysis. Exact for LRU; for FIFO and
//!   tree-PLRU they run at a policy-reduced *effective* associativity
//!   (sound via relative competitiveness, less precise — see the
//!   [`policy`] module docs).
//!
//! # Example
//!
//! ```
//! use rtpf_cache::{CacheConfig, ConcreteState, AccessOutcome, ReplacementPolicy};
//! use rtpf_isa::MemBlockId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // LRU is the default policy...
//! let config = CacheConfig::new(2, 16, 64)?; // 2-way, 16 B blocks, 64 B
//! let mut cache = ConcreteState::new(&config);
//! assert!(matches!(cache.access(MemBlockId(7)), AccessOutcome::Miss { .. }));
//! assert!(matches!(cache.access(MemBlockId(7)), AccessOutcome::Hit));
//!
//! // ...and the same geometry can run FIFO or tree-PLRU instead.
//! let fifo = config.with_policy(ReplacementPolicy::Fifo)?;
//! let mut cache = ConcreteState::new(&fifo);
//! cache.access(MemBlockId(0));
//! cache.access(MemBlockId(2)); // same set; insertion order [2, 0]
//! cache.access(MemBlockId(0)); // hit — FIFO does not reorder
//! // 0 is still the oldest insertion, so it is evicted first.
//! assert_eq!(cache.access(MemBlockId(4)).evicted(), Some(MemBlockId(0)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod classify;
pub mod concrete;
pub mod config;
pub mod intern;
pub mod may;
pub mod must;
pub mod persistence;
pub mod policy;
pub mod timing;

pub use classify::Classification;
pub use concrete::{AccessOutcome, ConcreteState};
pub use config::{CacheConfig, ConfigError};
pub use intern::{StateInterner, StatePair};
pub use may::MayState;
pub use must::MustState;
pub use persistence::PersistenceState;
pub use policy::ReplacementPolicy;
pub use timing::MemTiming;
