//! Concrete and abstract set-associative LRU instruction-cache models.
//!
//! This crate substitutes for the cache semantics of Ferdinand & Wilhelm
//! (reference [8] of the paper) that the authors' WCET analyzer builds on:
//!
//! * [`CacheConfig`] — geometry `(associativity, block bytes, capacity)`,
//!   including [`CacheConfig::paper_configs`], the paper's Table 2 set
//!   k1..k36;
//! * [`ConcreteState`] — an exact LRU cache state (`c : L → S`), used by the
//!   trace simulator and by the optimizer's reverse analysis;
//! * [`MustState`] / [`MayState`] — abstract cache states with the classic
//!   must/may update and join functions, used to classify references as
//!   always-hit / always-miss / unclassified during WCET analysis.
//!
//! # Example
//!
//! ```
//! use rtpf_cache::{CacheConfig, ConcreteState, AccessOutcome};
//! use rtpf_isa::MemBlockId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = CacheConfig::new(2, 16, 64)?; // 2-way, 16 B blocks, 64 B
//! let mut cache = ConcreteState::new(&config);
//! assert!(matches!(cache.access(MemBlockId(7)), AccessOutcome::Miss { .. }));
//! assert!(matches!(cache.access(MemBlockId(7)), AccessOutcome::Hit));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod classify;
pub mod concrete;
pub mod config;
pub mod intern;
pub mod may;
pub mod must;
pub mod persistence;
pub mod timing;

pub use classify::Classification;
pub use concrete::{AccessOutcome, ConcreteState};
pub use config::{CacheConfig, ConfigError};
pub use intern::{StateInterner, StatePair};
pub use may::MayState;
pub use must::MustState;
pub use persistence::PersistenceState;
pub use timing::MemTiming;
