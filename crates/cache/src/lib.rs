//! Concrete and abstract set-associative instruction-cache models, generic
//! over the replacement policy (LRU, FIFO, tree-PLRU).
//!
//! This crate substitutes for the cache semantics of Ferdinand & Wilhelm
//! (reference [8] of the paper) that the authors' WCET analyzer builds on,
//! extended with a [`ReplacementPolicy`] axis:
//!
//! * [`CacheConfig`] — geometry `(associativity, block bytes, capacity)`
//!   plus the replacement policy (LRU by default; select another with
//!   [`CacheConfig::with_policy`]), including
//!   [`CacheConfig::paper_configs`], the paper's Table 2 set k1..k36;
//! * [`ConcreteState`] — an exact cache state (`c : L → S`) under the
//!   configured policy, used by the trace simulator, the optimizer's
//!   reverse analysis, and the soundness audit's reference walks;
//! * [`MustState`] / [`MayState`] / [`PersistenceState`] — abstract cache
//!   states used to classify references as always-hit / always-miss /
//!   first-miss during WCET analysis. Exact for LRU; for FIFO and
//!   tree-PLRU they run at a policy-reduced *effective* associativity
//!   (sound via relative competitiveness, less precise — see the
//!   [`policy`] module docs).
//!
//! # Example
//!
//! ```
//! use rtpf_cache::{CacheConfig, ConcreteState, AccessOutcome, ReplacementPolicy};
//! use rtpf_isa::MemBlockId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // LRU is the default policy...
//! let config = CacheConfig::new(2, 16, 64)?; // 2-way, 16 B blocks, 64 B
//! let mut cache = ConcreteState::new(&config);
//! assert!(matches!(cache.access(MemBlockId(7)), AccessOutcome::Miss { .. }));
//! assert!(matches!(cache.access(MemBlockId(7)), AccessOutcome::Hit));
//!
//! // ...and the same geometry can run FIFO or tree-PLRU instead.
//! let fifo = config.with_policy(ReplacementPolicy::Fifo)?;
//! let mut cache = ConcreteState::new(&fifo);
//! cache.access(MemBlockId(0));
//! cache.access(MemBlockId(2)); // same set; insertion order [2, 0]
//! cache.access(MemBlockId(0)); // hit — FIFO does not reorder
//! // 0 is still the oldest insertion, so it is evicted first.
//! assert_eq!(cache.access(MemBlockId(4)).evicted(), Some(MemBlockId(0)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod classify;
pub mod concrete;
pub mod config;
pub mod hierarchy;
pub mod intern;
pub mod join;
#[cfg(any(test, feature = "legacy-oracle"))]
pub mod legacy;
pub mod may;
pub mod must;
mod packed;
pub mod persistence;
pub mod policy;
pub mod refine;
pub mod timing;

pub use classify::Classification;
pub use concrete::{AccessOutcome, ConcreteState};
pub use config::{CacheConfig, ConfigError, HierarchyViolation, SpecError};
pub use hierarchy::{
    classify_update_l2, CacheAccessClassification, ConcreteHierarchy, HierarchyConfig,
    HierarchyOutcome,
};
pub use intern::{SharedInterner, StateInterner, StatePair};
pub use join::join_pairs_into;
pub use may::MayState;
pub use must::MustState;
pub use persistence::PersistenceState;
pub use policy::ReplacementPolicy;
pub use refine::{NcCause, RefineConfig, RefineMark, SetState};
pub use timing::MemTiming;

/// The shared no-information sentinel pair for `config`: an empty must
/// state (nothing definitely cached) joined with an empty may state
/// (nothing possibly cached) — the correct entry state for analysis from
/// a cold cache, and the identity the fixpoint seeds predecessor-less
/// nodes with.
///
/// The sentinel path is allocation-free end to end: both constructors are
/// `const fn`, the backing packed-word vectors are empty, and cloning an
/// empty `Vec` performs no heap allocation. For FIFO and tree-PLRU the
/// may side carries [`ReplacementPolicy::UNBOUNDED`] effective
/// associativity, but the sentinel value itself is the same empty-word
/// encoding — one shared `static` (or one per-run binding cloned per
/// node) serves all three policies of a geometry without ever touching
/// the allocator.
pub const fn no_info(config: &CacheConfig) -> StatePair {
    (MustState::new(config), MayState::new(config))
}

#[cfg(test)]
mod sentinel_tests {
    use super::*;
    use rtpf_isa::MemBlockId;

    #[test]
    fn no_info_sentinel_lives_in_a_static() {
        // The whole chain — geometry validation, policy selection, state
        // construction — is const-evaluable, so the sentinel for a known
        // configuration is built at compile time and shared process-wide.
        const CFG: CacheConfig = match CacheConfig::new(2, 16, 256) {
            Ok(c) => c,
            Err(_) => panic!("valid Table 2 geometry"),
        };
        const FIFO: CacheConfig = match CFG.with_policy(ReplacementPolicy::Fifo) {
            Ok(c) => c,
            Err(_) => panic!("FIFO drives any geometry"),
        };
        static COLD_LRU: StatePair = no_info(&CFG);
        static COLD_FIFO: StatePair = no_info(&FIFO);

        // No information: nothing definitely cached, nothing possibly
        // cached, under either policy.
        for pair in [&COLD_LRU, &COLD_FIFO] {
            assert_eq!(pair.0.age(MemBlockId(3)), None);
            assert!(!pair.1.contains(MemBlockId(3)));
        }
        // Cloning the sentinel yields exactly `MustState::new` /
        // `MayState::new` for the same configuration.
        assert_eq!(
            COLD_LRU.clone(),
            (MustState::new(&CFG), MayState::new(&CFG))
        );
        assert_eq!(
            COLD_FIFO.clone(),
            (MustState::new(&FIFO), MayState::new(&FIFO))
        );
    }
}
