//! Allocation-lean k-way joins over packed state pairs.
//!
//! The classify fixpoint joins the out-states of all computed predecessors
//! before walking a node's references. Folding pairwise
//! (`clone` + `join` per extra predecessor) allocates one fresh word
//! vector per step; this module merges all `k` inputs in a single pass
//! into a caller-owned scratch [`StatePair`], so a node evaluation
//! performs zero join allocations regardless of fan-in.
//!
//! The merges are exact restatements of the binary joins of
//! [`MustState::join`](crate::MustState::join) and
//! [`MayState::join`](crate::MayState::join), which are associative and
//! commutative on the packed-word encoding:
//!
//! * **must** — a key survives iff it is present in *every* input, at the
//!   word-wise maximum (equal keys share all high lanes, so the `u64` max
//!   is the same block at its maximal age);
//! * **may** — the union of all keys, at the word-wise minimum (minimal
//!   age).
//!
//! A k-ary merge of sorted word vectors therefore produces bit-identical
//! words to any pairwise fold order.

use std::sync::Arc;

use crate::intern::StatePair;
use crate::packed;

/// Joins the must/may pairs in `ins` into `dst`, overwriting its words.
///
/// `dst` carries the geometry (it is typically cloned once per solver from
/// the [`crate::no_info`] sentinel); only its word vectors are rewritten,
/// and their capacity is reused across calls. `cursors` is merge scratch,
/// likewise reused. With no inputs `dst` becomes the no-information pair;
/// with one input it becomes a copy of it — matching the fixpoint's
/// semantics for predecessor-less and single-predecessor nodes.
pub fn join_pairs_into(dst: &mut StatePair, ins: &[Arc<StatePair>], cursors: &mut Vec<usize>) {
    match ins {
        [] => {
            dst.0.words_mut().clear();
            dst.1.words_mut().clear();
        }
        [one] => {
            copy_words(dst.0.words_mut(), one.0.words());
            copy_words(dst.1.words_mut(), one.1.words());
        }
        [a, b] => {
            // Two-input joins dominate real CFGs (diamond merges, loop
            // headers); dedicated two-pointer merges skip the cursor
            // machinery, and identical sides — the steady state at a
            // converged fixpoint — reduce to one vectorized compare plus
            // a copy.
            must_merge2(dst.0.words_mut(), a.0.words(), b.0.words());
            may_merge2(dst.1.words_mut(), a.1.words(), b.1.words());
        }
        _ => {
            must_merge(dst, ins, cursors);
            may_merge(dst, ins, cursors);
        }
    }
}

/// Binary must join into `out`: intersection at the word-wise maximum.
fn must_merge2(out: &mut Vec<u64>, a: &[u64], b: &[u64]) {
    if a == b {
        copy_words(out, a);
        return;
    }
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (wa, wb) = (a[i], b[j]);
        match packed::key_of(wa).cmp(&packed::key_of(wb)) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(wa.max(wb));
                i += 1;
                j += 1;
            }
        }
    }
}

/// Binary may join into `out`: union at the word-wise minimum.
fn may_merge2(out: &mut Vec<u64>, a: &[u64], b: &[u64]) {
    if a == b {
        copy_words(out, a);
        return;
    }
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (wa, wb) = (a[i], b[j]);
        match packed::key_of(wa).cmp(&packed::key_of(wb)) {
            std::cmp::Ordering::Less => {
                out.push(wa);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(wb);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(wa.min(wb));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

fn copy_words(dst: &mut Vec<u64>, src: &[u64]) {
    dst.clear();
    dst.extend_from_slice(src);
}

/// Intersection at maximal age: emit a key only when every input's cursor
/// can be advanced onto it.
fn must_merge(dst: &mut StatePair, ins: &[Arc<StatePair>], cur: &mut Vec<usize>) {
    cur.clear();
    cur.resize(ins.len(), 0);
    let out = dst.0.words_mut();
    out.clear();
    'merge: loop {
        // Candidate: the largest current key. Any exhausted input ends the
        // intersection.
        let mut cand = 0u64;
        for (c, p) in cur.iter().zip(ins) {
            let Some(&w) = p.0.words().get(*c) else {
                break 'merge;
            };
            cand = cand.max(packed::key_of(w));
        }
        // Advance every cursor to the first key >= the candidate. If all
        // land exactly on it the key is common; otherwise the next round's
        // larger candidate retries.
        let mut word = 0u64;
        let mut common = true;
        for (c, p) in cur.iter_mut().zip(ins) {
            let words = p.0.words();
            while *c < words.len() && packed::key_of(words[*c]) < cand {
                *c += 1;
            }
            let Some(&w) = words.get(*c) else {
                break 'merge;
            };
            if packed::key_of(w) == cand {
                word = word.max(w);
            } else {
                common = false;
            }
        }
        if common {
            out.push(word);
            for c in cur.iter_mut() {
                *c += 1;
            }
        }
    }
}

/// Union at minimal age: emit the smallest current key each round, folding
/// every input positioned on it.
fn may_merge(dst: &mut StatePair, ins: &[Arc<StatePair>], cur: &mut Vec<usize>) {
    cur.clear();
    cur.resize(ins.len(), 0);
    let out = dst.1.words_mut();
    out.clear();
    loop {
        let mut cand: Option<u64> = None;
        for (c, p) in cur.iter().zip(ins) {
            if let Some(&w) = p.1.words().get(*c) {
                let k = packed::key_of(w);
                cand = Some(cand.map_or(k, |b| b.min(k)));
            }
        }
        let Some(cand) = cand else {
            break;
        };
        let mut word = u64::MAX;
        for (c, p) in cur.iter_mut().zip(ins) {
            if let Some(&w) = p.1.words().get(*c) {
                if packed::key_of(w) == cand {
                    word = word.min(w);
                    *c += 1;
                }
            }
        }
        out.push(word);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{no_info, CacheConfig, ReplacementPolicy};
    use rtpf_isa::MemBlockId;

    fn pair(config: &CacheConfig, blocks: &[u64]) -> Arc<StatePair> {
        let mut p = no_info(config);
        for &b in blocks {
            p.0.update(MemBlockId(b));
            p.1.update(MemBlockId(b));
        }
        Arc::new(p)
    }

    /// The k-way merge must equal a pairwise fold in any order.
    fn fold(ins: &[Arc<StatePair>], seed: &StatePair) -> StatePair {
        match ins.split_first() {
            None => seed.clone(),
            Some((first, rest)) => {
                let mut acc = (**first).clone();
                for p in rest {
                    acc.0 = acc.0.join(&p.0);
                    acc.1 = acc.1.join(&p.1);
                }
                acc
            }
        }
    }

    #[test]
    fn kway_join_matches_pairwise_fold() {
        let lru = CacheConfig::new(2, 16, 64).unwrap();
        let fifo = lru.with_policy(ReplacementPolicy::Fifo).unwrap();
        for config in [lru, fifo] {
            let seed = no_info(&config);
            let inputs: Vec<Vec<u64>> = vec![
                vec![],
                vec![1, 2],
                vec![2, 1],
                vec![1, 2, 3, 4],
                vec![5, 6, 1],
                vec![2, 4, 6, 8, 10],
            ];
            let pairs: Vec<Arc<StatePair>> = inputs.iter().map(|b| pair(&config, b)).collect();
            let mut cursors = Vec::new();
            // Every prefix with >= 0 inputs, plus a permuted triple.
            for k in 0..=pairs.len() {
                let ins = &pairs[..k];
                let mut dst = seed.clone();
                join_pairs_into(&mut dst, ins, &mut cursors);
                assert_eq!(dst, fold(ins, &seed), "k = {k} under {config}");
            }
            let permuted = [
                Arc::clone(&pairs[3]),
                Arc::clone(&pairs[1]),
                Arc::clone(&pairs[4]),
            ];
            let mut dst = seed.clone();
            join_pairs_into(&mut dst, &permuted, &mut cursors);
            assert_eq!(dst, fold(&permuted, &seed));
        }
    }

    #[test]
    fn scratch_reuse_overwrites_stale_words() {
        let config = CacheConfig::new(2, 16, 64).unwrap();
        let seed = no_info(&config);
        let mut dst = seed.clone();
        let mut cursors = Vec::new();
        let big = [pair(&config, &[1, 2, 3, 4, 5, 6])];
        join_pairs_into(&mut dst, &big, &mut cursors);
        assert!(!dst.0.is_empty());
        // A later empty join must fully clear the previous content.
        join_pairs_into(&mut dst, &[], &mut cursors);
        assert_eq!(dst, seed);
    }
}
