//! Hash-consing of abstract cache state pairs.
//!
//! The dataflow fixpoint in the WCET analysis materialises one
//! (must, may) pair per VIVU context, and on real programs the vast
//! majority of those pairs are identical — straight-line runs of
//! references propagate the same state forward, and incremental
//! re-analysis reuses entire regions verbatim. Interning keyed by content
//! hash turns those duplicates into `Arc` clones, so equality checks
//! short-circuit on pointer identity and the per-state allocation cost is
//! paid once.

use std::collections::HashMap;
use std::sync::Arc;

use crate::{MayState, MustState};

/// A must/may abstract state pair as propagated per VIVU context.
pub type StatePair = (MustState, MayState);

/// Content-addressed store of [`StatePair`]s.
///
/// Lookup is by 64-bit content hash with an explicit collision bucket, so
/// two distinct states that happen to share a hash are still kept apart.
#[derive(Default, Debug)]
pub struct StateInterner {
    buckets: HashMap<u64, Vec<Arc<StatePair>>>,
    hits: u64,
    fresh: u64,
}

impl StateInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Content hash of a pair: a multiply-rotate mix over the packed state
    /// words. Interning hashes every state the fixpoint produces, so this
    /// replaced `DefaultHasher` (SipHash) on the profile; collisions are
    /// harmless — the bucket compares full states.
    fn key_of(pair: &StatePair) -> u64 {
        #[inline]
        fn mix(h: u64, x: u64) -> u64 {
            (h.rotate_left(5) ^ x).wrapping_mul(0x517c_c1b7_2722_0a95)
        }
        let mut h = 0x9e37_79b9_7f4a_7c15u64;
        h = mix(h, pair.0.words().len() as u64);
        for &w in pair.0.words() {
            h = mix(h, w);
        }
        for &w in pair.1.words() {
            h = mix(h, w);
        }
        h
    }

    /// Registers an already-shared pair (e.g. carried over from a previous
    /// analysis) as canonical without touching the hit/fresh counters, so
    /// that recomputed states equal to it resolve to the same allocation.
    pub fn seed(&mut self, arc: &Arc<StatePair>) {
        let bucket = self.buckets.entry(Self::key_of(arc)).or_default();
        if !bucket.iter().any(|p| Arc::ptr_eq(p, arc) || **p == **arc) {
            bucket.push(Arc::clone(arc));
        }
    }

    /// Returns the canonical `Arc` for `pair`, allocating only if no equal
    /// pair has been interned before.
    pub fn intern(&mut self, pair: StatePair) -> Arc<StatePair> {
        let key = Self::key_of(&pair);
        let bucket = self.buckets.entry(key).or_default();
        if let Some(existing) = bucket.iter().find(|p| ***p == pair) {
            self.hits += 1;
            return Arc::clone(existing);
        }
        self.fresh += 1;
        let arc = Arc::new(pair);
        bucket.push(Arc::clone(&arc));
        arc
    }

    /// Number of `intern` calls answered from the store.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of `intern` calls that allocated a new canonical pair.
    pub fn fresh(&self) -> u64 {
        self.fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheConfig;
    use rtpf_isa::MemBlockId;

    fn pair(blocks: &[u64]) -> StatePair {
        let config = CacheConfig::new(2, 16, 64).unwrap();
        let mut must = MustState::new(&config);
        let mut may = MayState::new(&config);
        for &b in blocks {
            must.update(MemBlockId(b));
            may.update(MemBlockId(b));
        }
        (must, may)
    }

    #[test]
    fn equal_pairs_share_one_allocation() {
        let mut it = StateInterner::new();
        let a = it.intern(pair(&[1, 2, 3]));
        let b = it.intern(pair(&[1, 2, 3]));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(it.hits(), 1);
        assert_eq!(it.fresh(), 1);
    }

    #[test]
    fn distinct_pairs_stay_distinct() {
        let mut it = StateInterner::new();
        let a = it.intern(pair(&[1]));
        let b = it.intern(pair(&[2]));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(*a, pair(&[1]));
        assert_eq!(*b, pair(&[2]));
        assert_eq!(it.fresh(), 2);
    }
}
