//! Hash-consing of abstract cache state pairs.
//!
//! The dataflow fixpoint in the WCET analysis materialises one
//! (must, may) pair per VIVU context, and on real programs the vast
//! majority of those pairs are identical — straight-line runs of
//! references propagate the same state forward, and incremental
//! re-analysis reuses entire regions verbatim. Interning keyed by content
//! hash turns those duplicates into `Arc` clones, so equality checks
//! short-circuit on pointer identity and the per-state allocation cost is
//! paid once.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex};

use crate::{MayState, MustState};

/// Pass-through hasher for keys that are already well-mixed `u64`s —
/// re-hashing the content hash through SipHash would only add latency.
#[derive(Default)]
struct PreHashed(u64);

impl Hasher for PreHashed {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("interner keys are pre-hashed u64s");
    }
    fn write_u64(&mut self, x: u64) {
        self.0 = x;
    }
}

/// A must/may abstract state pair as propagated per VIVU context.
pub type StatePair = (MustState, MayState);

/// Folded 128-bit multiply (the wyhash primitive): one `mulx` mixes two
/// words completely, and consecutive calls are independent, so the loop
/// below runs at multiplier throughput instead of a serial mix-chain's
/// latency.
#[inline]
fn mum(a: u64, b: u64) -> u64 {
    let m = u128::from(a) * u128::from(b);
    (m as u64) ^ ((m >> 64) as u64)
}

/// Content hash of a pair over the packed state words. Interning hashes
/// every state the fixpoint produces and large states run to hundreds of
/// words, so this is throughput-critical: word pairs fold through
/// independent [`mum`]s xor-accumulated with a position salt (the salt
/// keeps chunk order significant; the length seed keeps the must/may
/// split significant). Collisions are harmless — the bucket compares
/// full states.
fn content_hash(pair: &StatePair) -> u64 {
    const C0: u64 = 0x2d35_8dcc_aa6c_78a5;
    const C1: u64 = 0x8bb8_4b93_962e_acc9;
    const STEP: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut acc = mum(
        pair.0.words().len() as u64 ^ C0,
        pair.1.words().len() as u64 ^ C1,
    );
    let mut salt = 0u64;
    for words in [pair.0.words(), pair.1.words()] {
        let mut chunks = words.chunks_exact(2);
        for c in &mut chunks {
            salt = salt.wrapping_add(STEP);
            acc ^= mum(c[0] ^ salt, c[1] ^ C1);
        }
        if let [w] = chunks.remainder() {
            salt = salt.wrapping_add(STEP);
            acc ^= mum(w ^ salt, C0);
        }
    }
    mum(acc, C0)
}

/// Content-addressed store of [`StatePair`]s.
///
/// Open-addressed on the 64-bit content hash: each map slot holds one
/// canonical pair directly (no per-bucket `Vec`), and the astronomically
/// rare distinct-content hash collision linear-probes to `key + 1`.
/// Entries are never removed, so probe chains stay valid forever and a
/// probe can stop at the first vacant slot.
#[derive(Default, Debug)]
pub struct StateInterner {
    buckets: HashMap<u64, Arc<StatePair>, BuildHasherDefault<PreHashed>>,
    hits: u64,
    fresh: u64,
}

impl StateInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an already-shared pair (e.g. carried over from a previous
    /// analysis) as canonical without touching the hit/fresh counters, so
    /// that recomputed states equal to it resolve to the same allocation.
    pub fn seed(&mut self, arc: &Arc<StatePair>) {
        let mut key = content_hash(arc);
        loop {
            match self.buckets.get(&key) {
                Some(p) if Arc::ptr_eq(p, arc) || **p == **arc => return,
                Some(_) => key = key.wrapping_add(1),
                None => {
                    self.buckets.insert(key, Arc::clone(arc));
                    return;
                }
            }
        }
    }

    /// Returns the canonical `Arc` for `pair`, allocating only if no equal
    /// pair has been interned before.
    pub fn intern(&mut self, pair: StatePair) -> Arc<StatePair> {
        let mut key = content_hash(&pair);
        loop {
            match self.buckets.get(&key) {
                Some(p) if **p == pair => {
                    self.hits += 1;
                    return Arc::clone(p);
                }
                Some(_) => key = key.wrapping_add(1),
                None => {
                    self.fresh += 1;
                    let arc = Arc::new(pair);
                    self.buckets.insert(key, Arc::clone(&arc));
                    return arc;
                }
            }
        }
    }

    /// [`intern`](StateInterner::intern) for a borrowed pair, with the
    /// content hash precomputed by the caller: clones `pair` only when no
    /// equal pair exists yet (the clone allocates exactly `len`, so
    /// oversized scratch capacity is not carried into the store). Returns
    /// the canonical `Arc` and whether it was freshly allocated.
    fn intern_ref_hashed(&mut self, key: u64, pair: &StatePair) -> (Arc<StatePair>, bool) {
        let mut key = key;
        loop {
            match self.buckets.get(&key) {
                Some(p) if **p == *pair => {
                    self.hits += 1;
                    return (Arc::clone(p), false);
                }
                Some(_) => key = key.wrapping_add(1),
                None => {
                    self.fresh += 1;
                    let arc = Arc::new(pair.clone());
                    self.buckets.insert(key, Arc::clone(&arc));
                    return (arc, true);
                }
            }
        }
    }

    /// Number of `intern` calls answered from the store.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of `intern` calls that allocated a new canonical pair.
    pub fn fresh(&self) -> u64 {
        self.fresh
    }
}

/// Number of independently locked shards in a [`SharedInterner`]. A power
/// of two so the shard index is a shift of the (well-mixed) content hash.
const SHARDS: usize = 16;

/// A concurrency-safe [`StateInterner`], sharded by content hash.
///
/// The parallel classify fixpoint interns out-states from every worker
/// thread; one global lock would serialize exactly the hot path the
/// SCC-DAG scheduling parallelizes. Each shard owns a disjoint slice of
/// the hash space behind its own mutex, and a shard's lock is held across
/// the whole check-then-insert, so content-equal pairs always resolve to
/// one canonical `Arc` — the invariant the pointer-keyed evaluation memo
/// depends on — no matter how many threads race.
#[derive(Default, Debug)]
pub struct SharedInterner {
    shards: [Mutex<StateInterner>; SHARDS],
}

impl SharedInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// The content hash is multiply-mixed, so its high bits spread best.
    #[inline]
    fn shard_of(hash: u64) -> usize {
        (hash >> 60) as usize & (SHARDS - 1)
    }

    /// Returns the canonical `Arc` for `pair` and whether it was freshly
    /// allocated, cloning `pair` only on a miss.
    pub fn intern_ref(&self, pair: &StatePair) -> (Arc<StatePair>, bool) {
        let hash = content_hash(pair);
        self.shards[Self::shard_of(hash)]
            .lock()
            .expect("interner shard poisoned")
            .intern_ref_hashed(hash, pair)
    }

    /// Total intern calls answered from the store, across shards.
    pub fn hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("interner shard poisoned").hits())
            .sum()
    }

    /// Total intern calls that allocated a new canonical pair, across
    /// shards.
    pub fn fresh(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("interner shard poisoned").fresh())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheConfig;
    use rtpf_isa::MemBlockId;

    fn pair(blocks: &[u64]) -> StatePair {
        let config = CacheConfig::new(2, 16, 64).unwrap();
        let mut must = MustState::new(&config);
        let mut may = MayState::new(&config);
        for &b in blocks {
            must.update(MemBlockId(b));
            may.update(MemBlockId(b));
        }
        (must, may)
    }

    #[test]
    fn equal_pairs_share_one_allocation() {
        let mut it = StateInterner::new();
        let a = it.intern(pair(&[1, 2, 3]));
        let b = it.intern(pair(&[1, 2, 3]));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(it.hits(), 1);
        assert_eq!(it.fresh(), 1);
    }

    #[test]
    fn shared_interner_resolves_equal_pairs_across_threads() {
        let it = SharedInterner::new();
        let canon: Vec<Arc<StatePair>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| it.intern_ref(&pair(&[1, 2, 3])).0))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for a in &canon {
            assert!(Arc::ptr_eq(a, &canon[0]), "racy intern split the canon");
        }
        assert_eq!(it.fresh(), 1);
        assert_eq!(it.hits(), 3);
        // A content-distinct pair gets its own allocation.
        let (other, fresh) = it.intern_ref(&pair(&[4]));
        assert!(fresh);
        assert!(!Arc::ptr_eq(&other, &canon[0]));
        assert_eq!(it.fresh(), 2);
    }

    #[test]
    fn distinct_pairs_stay_distinct() {
        let mut it = StateInterner::new();
        let a = it.intern(pair(&[1]));
        let b = it.intern(pair(&[2]));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(*a, pair(&[1]));
        assert_eq!(*b, pair(&[2]));
        assert_eq!(it.fresh(), 2);
    }
}
