//! Two-level (L1 + L2) instruction-cache hierarchy.
//!
//! The model follows Hardy & Puaut's multi-level WCET analysis: each
//! level runs the classic must/may analysis independently, but the
//! stream of references an L2 analysis sees is *filtered* by the L1
//! outcomes. A reference the L1 analysis proves always-hit never reaches
//! L2 (its [`CacheAccessClassification`] is `Never`); an L1 always-miss
//! reaches L2 on every execution (`Always`); an unclassified L1 outcome
//! may or may not reach L2 (`Uncertain`), and the sound L2 update is the
//! join of the state with and without the access applied.
//!
//! Concretely the hierarchy is *fill-inclusive without back-invalidation*:
//! an L1 miss looks the block up in L2, filling L1 from L2 on an L2 hit
//! and filling **both** levels from DRAM on an L2 miss; an L2 eviction
//! does not invalidate the L1 copy. This non-exclusive setting is the one
//! Hardy & Puaut's soundness argument assumes — enforced inclusion with
//! back-invalidation would let an L2 eviction remove a block the
//! independent L1 must-analysis guarantees, breaking L1 always-hit.

use std::fmt;

use rtpf_isa::MemBlockId;

use crate::classify::Classification;
use crate::concrete::ConcreteState;
use crate::config::{CacheConfig, ConfigError, HierarchyViolation};
use crate::intern::StatePair;

/// An ordered cache hierarchy: a mandatory L1 plus an optional L2.
///
/// The single-level hierarchy is the degenerate case and behaves exactly
/// like the bare [`CacheConfig`] did before the hierarchy existed — every
/// L2 code path in the stack is gated on [`l2`](HierarchyConfig::l2)
/// being present.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct HierarchyConfig {
    l1: CacheConfig,
    l2: Option<CacheConfig>,
}

impl HierarchyConfig {
    /// The degenerate single-level hierarchy.
    pub const fn l1_only(l1: CacheConfig) -> Self {
        HierarchyConfig { l1, l2: None }
    }

    /// A two-level hierarchy, validated for monotonicity.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::HierarchyInvalid`] when the L2 capacity is
    /// not strictly larger than the L1 capacity, or the block sizes
    /// differ (the per-level filter assumes one address-to-block map).
    pub const fn two_level(l1: CacheConfig, l2: CacheConfig) -> Result<Self, ConfigError> {
        if l2.capacity_bytes() <= l1.capacity_bytes() {
            return Err(ConfigError::HierarchyInvalid(
                HierarchyViolation::CapacityNotLarger,
            ));
        }
        if l2.block_bytes() != l1.block_bytes() {
            return Err(ConfigError::HierarchyInvalid(
                HierarchyViolation::BlockMismatch,
            ));
        }
        Ok(HierarchyConfig { l1, l2: Some(l2) })
    }

    /// Builds a hierarchy from an ordered list of per-level geometries
    /// (innermost first). One level is the degenerate case; two levels
    /// are validated as in [`two_level`](HierarchyConfig::two_level).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::HierarchyInvalid`] for an empty list, more
    /// than two levels, or a non-monotone two-level pair.
    pub fn from_levels(levels: &[CacheConfig]) -> Result<Self, ConfigError> {
        match levels {
            [] => Err(ConfigError::HierarchyInvalid(HierarchyViolation::Empty)),
            [l1] => Ok(Self::l1_only(*l1)),
            [l1, l2] => Self::two_level(*l1, *l2),
            _ => Err(ConfigError::HierarchyInvalid(
                HierarchyViolation::TooManyLevels,
            )),
        }
    }

    /// The innermost level.
    #[inline]
    pub const fn l1(&self) -> &CacheConfig {
        &self.l1
    }

    /// The second level, when the hierarchy has one.
    #[inline]
    pub const fn l2(&self) -> Option<&CacheConfig> {
        self.l2.as_ref()
    }

    /// The levels in order, innermost first.
    pub fn levels(&self) -> impl Iterator<Item = &CacheConfig> {
        std::iter::once(&self.l1).chain(self.l2.as_ref())
    }

    /// Number of levels (1 or 2).
    #[inline]
    pub const fn n_levels(&self) -> usize {
        if self.l2.is_some() {
            2
        } else {
            1
        }
    }

    /// Whether a second level is present.
    #[inline]
    pub const fn is_multi_level(&self) -> bool {
        self.l2.is_some()
    }
}

impl fmt::Display for HierarchyConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.l1)?;
        if let Some(l2) = &self.l2 {
            write!(f, " / L2 {l2}")?;
        }
        Ok(())
    }
}

/// Whether a reference's L1 outcome admits an access to the next level
/// (Hardy & Puaut's *cache access classification*).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CacheAccessClassification {
    /// The access reaches the next level on every execution (L1
    /// always-miss).
    Always,
    /// The access never reaches the next level (L1 always-hit).
    Never,
    /// The access may or may not reach the next level (L1 unclassified).
    Uncertain,
}

impl CacheAccessClassification {
    /// The next-level access classification induced by an L1 outcome.
    pub fn from_l1(class: Classification) -> Self {
        match class {
            Classification::AlwaysHit => CacheAccessClassification::Never,
            Classification::AlwaysMiss => CacheAccessClassification::Always,
            Classification::Unclassified => CacheAccessClassification::Uncertain,
        }
    }

    /// Whether the next level can see this access at all.
    #[inline]
    pub fn may_access(&self) -> bool {
        !matches!(self, CacheAccessClassification::Never)
    }
}

impl fmt::Display for CacheAccessClassification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CacheAccessClassification::Always => "always",
            CacheAccessClassification::Never => "never",
            CacheAccessClassification::Uncertain => "uncertain",
        };
        f.write_str(s)
    }
}

/// The filtered L2 must/may update for one reference: classifies the
/// reference against the *incoming* L2 state, then applies the update the
/// access classification calls for.
///
/// * `Always` — the access definitely occurs: plain update on both sides.
/// * `Never` — the access never occurs: no update, and no L2 claim is
///   made ([`Classification::Unclassified`] is returned as the "no
///   claim" value; it is never consulted, since the L1 always-hit already
///   fixes the cost).
/// * `Uncertain` — the access may occur: the sound post-state is the
///   *join* of the untouched state with the updated one. The returned
///   classification is still meaningful — it holds conditionally,
///   whenever the access does reach L2, which is exactly when its cost
///   is charged.
pub fn classify_update_l2(
    state: &mut StatePair,
    block: MemBlockId,
    cac: CacheAccessClassification,
) -> Classification {
    match cac {
        CacheAccessClassification::Never => Classification::Unclassified,
        CacheAccessClassification::Always => {
            let guaranteed = state.0.update_classify(block);
            let possible = state.1.update_classify(block);
            classification_of(guaranteed, possible)
        }
        CacheAccessClassification::Uncertain => {
            let guaranteed = state.0.contains(block);
            let possible = state.1.contains(block);
            let mut touched = state.clone();
            touched.0.update(block);
            touched.1.update(block);
            state.0 = state.0.join(&touched.0);
            state.1 = state.1.join(&touched.1);
            classification_of(guaranteed, possible)
        }
    }
}

#[inline]
fn classification_of(guaranteed: bool, possible: bool) -> Classification {
    if guaranteed {
        Classification::AlwaysHit
    } else if !possible {
        Classification::AlwaysMiss
    } else {
        Classification::Unclassified
    }
}

/// Outcome of one access against a [`ConcreteHierarchy`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HierarchyOutcome {
    /// Served by L1; no other level sees the access.
    L1Hit,
    /// L1 miss served by L2; L1 fills from L2.
    L2Hit,
    /// Miss in every level; the line fills from DRAM into both levels
    /// (into L1 alone when the hierarchy has no L2).
    Miss,
}

impl HierarchyOutcome {
    /// Whether L1 served the access.
    #[inline]
    pub fn is_l1_hit(&self) -> bool {
        matches!(self, HierarchyOutcome::L1Hit)
    }

    /// Whether the access reached the second level.
    #[inline]
    pub fn accessed_l2(&self) -> bool {
        !matches!(self, HierarchyOutcome::L1Hit)
    }
}

/// Exact two-level cache state: the fill-inclusive, no-back-invalidation
/// composition of two [`ConcreteState`]s (or one, for the degenerate
/// hierarchy). Shared by the trace simulator and the soundness audit so
/// both replay identical semantics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConcreteHierarchy {
    l1: ConcreteState,
    l2: Option<ConcreteState>,
}

impl ConcreteHierarchy {
    /// An all-invalid hierarchy for the given configuration.
    pub fn new(config: &HierarchyConfig) -> Self {
        ConcreteHierarchy {
            l1: ConcreteState::new(config.l1()),
            l2: config.l2().map(ConcreteState::new),
        }
    }

    /// One reference: look up L1; on an L1 miss consult L2 (when
    /// present), filling L1 from L2 on an L2 hit and both levels from
    /// DRAM on an L2 miss. L2 evictions never invalidate L1 lines.
    pub fn access(&mut self, block: MemBlockId) -> HierarchyOutcome {
        if self.l1.access(block).is_hit() {
            return HierarchyOutcome::L1Hit;
        }
        match &mut self.l2 {
            None => HierarchyOutcome::Miss,
            Some(l2) => {
                if l2.access(block).is_hit() {
                    HierarchyOutcome::L2Hit
                } else {
                    HierarchyOutcome::Miss
                }
            }
        }
    }

    /// The L1 state.
    #[inline]
    pub fn l1(&self) -> &ConcreteState {
        &self.l1
    }

    /// The L2 state, when the hierarchy has one.
    #[inline]
    pub fn l2(&self) -> Option<&ConcreteState> {
        self.l2.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ReplacementPolicy;
    use crate::{no_info, MayState, MustState};

    fn l1() -> CacheConfig {
        CacheConfig::new(2, 16, 256).unwrap()
    }

    fn l2() -> CacheConfig {
        CacheConfig::new(4, 16, 1024).unwrap()
    }

    #[test]
    fn degenerate_hierarchy_wraps_l1() {
        let h = HierarchyConfig::l1_only(l1());
        assert_eq!(h.l1(), &l1());
        assert_eq!(h.l2(), None);
        assert_eq!(h.n_levels(), 1);
        assert!(!h.is_multi_level());
        assert_eq!(h.levels().count(), 1);
        assert_eq!(h.to_string(), "(2, 16, 256)");
        assert_eq!(HierarchyConfig::from_levels(&[l1()]), Ok(h));
    }

    #[test]
    fn two_level_hierarchy_orders_levels() {
        let h = HierarchyConfig::two_level(l1(), l2()).unwrap();
        assert_eq!(h.l2(), Some(&l2()));
        assert_eq!(h.n_levels(), 2);
        assert!(h.is_multi_level());
        let levels: Vec<_> = h.levels().copied().collect();
        assert_eq!(levels, vec![l1(), l2()]);
        assert_eq!(h.to_string(), "(2, 16, 256) / L2 (4, 16, 1024)");
        assert_eq!(HierarchyConfig::from_levels(&[l1(), l2()]), Ok(h));
    }

    #[test]
    fn rejects_l2_capacity_not_larger_than_l1() {
        // Equal capacities.
        let same = CacheConfig::new(4, 16, 256).unwrap();
        assert_eq!(
            HierarchyConfig::two_level(l1(), same),
            Err(ConfigError::HierarchyInvalid(
                HierarchyViolation::CapacityNotLarger
            ))
        );
        // Strictly smaller.
        let small = CacheConfig::new(2, 16, 128).unwrap();
        assert_eq!(
            HierarchyConfig::two_level(l1(), small),
            Err(ConfigError::HierarchyInvalid(
                HierarchyViolation::CapacityNotLarger
            ))
        );
    }

    #[test]
    fn rejects_mismatched_block_sizes() {
        let wide = CacheConfig::new(4, 32, 1024).unwrap();
        assert_eq!(
            HierarchyConfig::two_level(l1(), wide),
            Err(ConfigError::HierarchyInvalid(
                HierarchyViolation::BlockMismatch
            ))
        );
    }

    #[test]
    fn rejects_empty_and_too_deep_level_lists() {
        assert_eq!(
            HierarchyConfig::from_levels(&[]),
            Err(ConfigError::HierarchyInvalid(HierarchyViolation::Empty))
        );
        let l3 = CacheConfig::new(8, 16, 8192).unwrap();
        assert_eq!(
            HierarchyConfig::from_levels(&[l1(), l2(), l3]),
            Err(ConfigError::HierarchyInvalid(
                HierarchyViolation::TooManyLevels
            ))
        );
    }

    #[test]
    fn cac_mirrors_l1_classification() {
        use CacheAccessClassification as Cac;
        assert_eq!(Cac::from_l1(Classification::AlwaysHit), Cac::Never);
        assert_eq!(Cac::from_l1(Classification::AlwaysMiss), Cac::Always);
        assert_eq!(Cac::from_l1(Classification::Unclassified), Cac::Uncertain);
        assert!(!Cac::Never.may_access());
        assert!(Cac::Always.may_access());
        assert!(Cac::Uncertain.may_access());
        assert_eq!(Cac::Uncertain.to_string(), "uncertain");
    }

    #[test]
    fn never_access_leaves_state_untouched_and_claims_nothing() {
        let cfg = l2();
        let mut state = no_info(&cfg);
        state.0.update(MemBlockId(1));
        state.1.update(MemBlockId(1));
        let before = state.clone();
        let class = classify_update_l2(&mut state, MemBlockId(2), CacheAccessClassification::Never);
        assert_eq!(class, Classification::Unclassified);
        assert_eq!(state, before);
    }

    #[test]
    fn always_access_updates_like_single_level() {
        let cfg = l2();
        let mut filtered = no_info(&cfg);
        let mut plain = no_info(&cfg);
        for b in [3u64, 7, 3, 11] {
            let class = classify_update_l2(
                &mut filtered,
                MemBlockId(b),
                CacheAccessClassification::Always,
            );
            let guaranteed = plain.0.update_classify(MemBlockId(b));
            let possible = plain.1.update_classify(MemBlockId(b));
            assert_eq!(class, classification_of(guaranteed, possible));
            assert_eq!(filtered, plain);
        }
    }

    #[test]
    fn uncertain_access_joins_with_and_without() {
        let cfg = l2();
        let b = MemBlockId(5);
        // Cold state: after an uncertain access the block must NOT enter
        // the must state (the no-access branch does not hold it) but must
        // enter the may state (the access branch might cache it).
        let mut state = no_info(&cfg);
        let class = classify_update_l2(&mut state, b, CacheAccessClassification::Uncertain);
        assert_eq!(class, Classification::AlwaysMiss); // judged on incoming state
        assert!(!state.0.contains(b));
        assert!(state.1.contains(b));
        // Warm state: a block already guaranteed stays guaranteed, and the
        // conditional classification is always-hit.
        let mut warm = no_info(&cfg);
        warm.0.update(b);
        warm.1.update(b);
        let class = classify_update_l2(&mut warm, b, CacheAccessClassification::Uncertain);
        assert_eq!(class, Classification::AlwaysHit);
        assert!(warm.0.contains(b));
    }

    #[test]
    fn uncertain_join_equals_manual_join() {
        let cfg = l2();
        let mut seed = no_info(&cfg);
        for b in [1u64, 9, 17] {
            seed.0.update(MemBlockId(b));
            seed.1.update(MemBlockId(b));
        }
        let mut filtered = seed.clone();
        classify_update_l2(
            &mut filtered,
            MemBlockId(33),
            CacheAccessClassification::Uncertain,
        );
        let mut touched = seed.clone();
        touched.0.update(MemBlockId(33));
        touched.1.update(MemBlockId(33));
        let expect = (seed.0.join(&touched.0), seed.1.join(&touched.1));
        assert_eq!(filtered, expect);
    }

    #[test]
    fn concrete_hierarchy_l1_hit_never_touches_l2() {
        let h = HierarchyConfig::two_level(l1(), l2()).unwrap();
        let mut c = ConcreteHierarchy::new(&h);
        let b = MemBlockId(4);
        assert_eq!(c.access(b), HierarchyOutcome::Miss);
        let l2_after_fill = c.l2().unwrap().clone();
        // Repeat hit: L1 serves it, the L2 state must be untouched.
        assert_eq!(c.access(b), HierarchyOutcome::L1Hit);
        assert_eq!(c.l2().unwrap(), &l2_after_fill);
    }

    #[test]
    fn dram_fill_enters_both_levels_and_l2_serves_l1_evictions() {
        let h = HierarchyConfig::two_level(l1(), l2()).unwrap();
        let mut c = ConcreteHierarchy::new(&h);
        // L1 is 2-way with 8 sets; blocks 0, 8, 16 all map to L1 set 0,
        // so block 0 is evicted from L1 by the third fill. L2 is 4-way
        // with 16 sets, so 0 and 16 share an L2 set without conflict.
        for b in [0u64, 8, 16] {
            assert_eq!(c.access(MemBlockId(b)), HierarchyOutcome::Miss);
            assert!(c.l1().contains(MemBlockId(b)));
            assert!(c.l2().unwrap().contains(MemBlockId(b)));
        }
        assert!(!c.l1().contains(MemBlockId(0)));
        // The re-reference misses L1 but hits L2 and re-fills L1.
        assert_eq!(c.access(MemBlockId(0)), HierarchyOutcome::L2Hit);
        assert!(c.l1().contains(MemBlockId(0)));
    }

    #[test]
    fn degenerate_concrete_hierarchy_matches_single_level() {
        let h = HierarchyConfig::l1_only(l1());
        let mut c = ConcreteHierarchy::new(&h);
        let mut plain = ConcreteState::new(&l1());
        let mut x = 1u64;
        for _ in 0..500 {
            x = x.wrapping_mul(48271) % 0x7fffffff;
            let b = MemBlockId(x % 64);
            let out = c.access(b);
            let hit = plain.access(b).is_hit();
            assert_eq!(out.is_l1_hit(), hit);
            assert_ne!(out, HierarchyOutcome::L2Hit);
        }
        assert_eq!(c.l1(), &plain);
    }

    #[test]
    fn no_back_invalidation_preserves_l1_residency() {
        // Force repeated L2 evictions of a hot block and check its L1
        // copy survives them all.
        let tiny_l1 = CacheConfig::new(2, 16, 32).unwrap(); // one 2-way set
        let tiny_l2 = CacheConfig::new(1, 16, 64).unwrap(); // 4 direct-mapped sets
        let h = HierarchyConfig::two_level(tiny_l1, tiny_l2).unwrap();
        let mut c = ConcreteHierarchy::new(&h);
        let hot = MemBlockId(0);
        c.access(hot);
        // Blocks 4, 8, 12 map to L2 set 0 like `hot`, each evicting it
        // from L2. Re-accessing `hot` in between keeps it one of the two
        // LRU ways of the single L1 set, so every re-access is an L1 hit
        // despite the block being long gone from L2.
        for b in [4u64, 8, 12] {
            c.access(MemBlockId(b));
            assert!(!c.l2().unwrap().contains(hot));
            assert_eq!(c.access(hot), HierarchyOutcome::L1Hit);
        }
    }

    #[test]
    fn works_for_all_l2_policies() {
        for policy in ReplacementPolicy::ALL {
            let l2p = l2().with_policy(policy).unwrap();
            let h = HierarchyConfig::two_level(l1(), l2p).unwrap();
            let mut c = ConcreteHierarchy::new(&h);
            assert_eq!(c.access(MemBlockId(3)), HierarchyOutcome::Miss);
            assert_eq!(c.access(MemBlockId(3)), HierarchyOutcome::L1Hit);
            // And the abstract side accepts the same geometry.
            let must = MustState::new(&l2p);
            let may = MayState::new(&l2p);
            assert!(must.is_empty());
            let _ = may.is_unbounded();
        }
    }
}
