//! Focused exact refinement of the competitiveness-based FIFO/tree-PLRU
//! classification (DESIGN.md §12).
//!
//! The cheap abstract analyses for FIFO and tree-PLRU run at a
//! policy-reduced effective associativity (must) or with no may
//! information at all ([`NcCause::Sentinel`]), so they leave many
//! references unclassified that are in fact always-hit or always-miss.
//! Following Touzeau et al. ("Fast and exact analysis for LRU caches",
//! PAPERS.md), the refinement stage re-examines exactly those leftovers
//! with an *exact* finite-state exploration: it tracks sets of concrete
//! per-set policy states — the FIFO insertion queue or the PLRU ways plus
//! tree direction bits, projected onto one cache set — merged (unioned)
//! at join points, with a per-node state budget that falls back soundly
//! to the cheap result when exceeded.
//!
//! This module holds the policy-level pieces: the [`RefineConfig`] knob
//! threaded through the engine fingerprints, the projected [`SetState`]
//! with its exact per-policy transfer, and the [`RefineMark`] recording
//! what the stage did to each reference (consumed by the soundness
//! audit's RTPF040–042 cross-checks). The graph exploration itself lives
//! in `rtpf-wcet::refine`, next to the classify fixpoint it refines.

use std::fmt;

use crate::concrete::{plru_touch, plru_victim};
use crate::policy::ReplacementPolicy;

/// Configuration of the refinement stage.
///
/// Threaded from `EngineConfig` (where it enters every analysis
/// fingerprint) down to the classify fixpoint. Refinement only ever
/// *adds* precision: with `enabled = false`, or for LRU (whose abstract
/// domain is already exact), the analysis result is bit-identical to the
/// unrefined one.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RefineConfig {
    /// Whether the refinement stage runs at all.
    pub enabled: bool,
    /// Per-node cap on the number of distinct projected set states the
    /// exploration may hold. Exceeding it abandons the *whole* cache set
    /// (a partial exploration could miss a reachable state and is
    /// therefore unsound to conclude from) and keeps the cheap
    /// classification for its references.
    pub max_states: u32,
}

impl RefineConfig {
    /// Default per-node state budget. Join points in the (single-path
    /// biased) benchmark suite rarely accumulate more than a handful of
    /// distinct projected states; 64 leaves ample headroom while bounding
    /// the worst case.
    pub const DEFAULT_MAX_STATES: u32 = 64;

    /// Refinement on, default budget.
    pub const fn on() -> RefineConfig {
        RefineConfig {
            enabled: true,
            max_states: RefineConfig::DEFAULT_MAX_STATES,
        }
    }

    /// Refinement off. The budget is kept at the default so toggling
    /// `enabled` alone round-trips.
    pub const fn off() -> RefineConfig {
        RefineConfig {
            enabled: false,
            max_states: RefineConfig::DEFAULT_MAX_STATES,
        }
    }

    /// Whether the stage has anything to do under `policy`: it must be
    /// enabled, and the policy's cheap abstract domain must be inexact
    /// (LRU is exact already — refinement would be pure cost).
    pub fn applies_to(self, policy: ReplacementPolicy) -> bool {
        self.enabled && policy != ReplacementPolicy::Lru
    }
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig::on()
    }
}

impl fmt::Display for RefineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.enabled {
            write!(f, "on(budget={})", self.max_states)
        } else {
            f.write_str("off")
        }
    }
}

/// What the refinement stage did to one reference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum RefineMark {
    /// Not a refinement target: already classified by the cheap analysis,
    /// or the stage did not run (disabled, LRU, hardware prefetcher).
    #[default]
    Untouched,
    /// Targeted, but left unclassified: the exploration saw both hits and
    /// misses, or its budget was exceeded and the cheap result kept.
    Examined,
    /// Upgraded from unclassified to always-hit or always-miss by the
    /// exact exploration. The soundness audit holds these to the same
    /// hard standard as the cheap classifications (RTPF040/RTPF042).
    Refined,
}

/// Why the cheap analysis left a reference unclassified.
///
/// The distinction matters to the refinement stage: sentinel NC blocks
/// (the may domain carried no information at all) are the designed
/// targets — any exploration outcome is new signal — while conflict NC
/// blocks already lost a genuine precision fight and are less likely to
/// resolve.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NcCause {
    /// The may analysis ran in the no-information unbounded domain (FIFO /
    /// tree-PLRU, or a geometry too wide for the packed age lane): it can
    /// never rule out caching, so the always-miss half of the classifier
    /// was structurally absent.
    Sentinel,
    /// The may domain was exact but the block genuinely conflicts: cached
    /// on some reaching paths, evicted on others.
    Conflict,
}

impl fmt::Display for NcCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NcCause::Sentinel => "sentinel",
            NcCause::Conflict => "conflict",
        })
    }
}

/// Sentinel for an invalid (empty) way in a [`SetState`].
const EMPTY: u64 = u64::MAX;

/// One concrete cache-set state projected onto a single set: the blocks
/// resident in its ways plus the tree-PLRU direction bits, under the
/// exact per-policy semantics of [`crate::ConcreteState`].
///
/// The way order is policy-defined, mirroring the concrete model:
/// most-recently-*inserted* first for FIFO (hits do not reorder),
/// most-recently-used first for LRU, physical way order for tree-PLRU
/// (fills take the lowest free way; eviction replaces in place). Blocks
/// are raw `MemBlockId` values (`u64`); only same-set blocks may be
/// accessed.
///
/// `Ord`/`Eq` derive structurally, so exploration state sets can be kept
/// sorted and deduplicated with plain slice operations.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SetState {
    /// Resident blocks, length ≤ associativity, no holes ([`EMPTY`] never
    /// appears: fills extend the vector, evictions replace in place).
    ways: Vec<u64>,
    /// Heap-indexed tree-PLRU direction bits (root at node 1); always 0
    /// for LRU and FIFO.
    bits: u64,
}

impl SetState {
    /// The cold (all-invalid) set state.
    pub const fn cold() -> SetState {
        SetState {
            ways: Vec::new(),
            bits: 0,
        }
    }

    /// Whether `block` is resident.
    #[inline]
    pub fn contains(&self, block: u64) -> bool {
        debug_assert_ne!(block, EMPTY);
        self.ways.contains(&block)
    }

    /// The exact update function of `policy` at associativity `assoc`,
    /// restricted to this set. Returns whether the access hit.
    ///
    /// Semantics mirror [`crate::ConcreteState::access`] way for way;
    /// the lockstep test below pins the agreement.
    pub fn access(&mut self, policy: ReplacementPolicy, assoc: u32, block: u64) -> bool {
        debug_assert_ne!(block, EMPTY);
        let assoc = assoc as usize;
        match policy {
            ReplacementPolicy::Lru => {
                if let Some(pos) = self.ways.iter().position(|&b| b == block) {
                    let b = self.ways.remove(pos);
                    self.ways.insert(0, b);
                    return true;
                }
                if self.ways.len() == assoc {
                    self.ways.pop();
                }
                self.ways.insert(0, block);
                false
            }
            ReplacementPolicy::Fifo => {
                if self.ways.contains(&block) {
                    return true; // FIFO never reorders on a hit
                }
                if self.ways.len() == assoc {
                    self.ways.pop();
                }
                self.ways.insert(0, block);
                false
            }
            ReplacementPolicy::Plru => {
                if let Some(way) = self.ways.iter().position(|&b| b == block) {
                    plru_touch(&mut self.bits, assoc, way);
                    return true;
                }
                if self.ways.len() < assoc {
                    let way = self.ways.len();
                    self.ways.push(block);
                    plru_touch(&mut self.bits, assoc, way);
                    return false;
                }
                let way = plru_victim(self.bits, assoc);
                self.ways[way] = block;
                plru_touch(&mut self.bits, assoc, way);
                false
            }
        }
    }

    /// Resident blocks in the policy-defined order.
    #[inline]
    pub fn ways(&self) -> &[u64] {
        &self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::ConcreteState;
    use crate::config::CacheConfig;
    use rtpf_isa::MemBlockId;

    #[test]
    fn config_knob_roundtrips_and_gates_by_policy() {
        assert_eq!(RefineConfig::default(), RefineConfig::on());
        assert!(RefineConfig::on().applies_to(ReplacementPolicy::Fifo));
        assert!(RefineConfig::on().applies_to(ReplacementPolicy::Plru));
        // LRU is exact already; the stage must never run on it.
        assert!(!RefineConfig::on().applies_to(ReplacementPolicy::Lru));
        for p in ReplacementPolicy::ALL {
            assert!(!RefineConfig::off().applies_to(p));
        }
        assert_eq!(RefineConfig::on().to_string(), "on(budget=64)");
        assert_eq!(RefineConfig::off().to_string(), "off");
    }

    #[test]
    fn projected_state_runs_lockstep_with_the_concrete_model() {
        // Single-set geometries: the projection must agree with the full
        // concrete model access for access, for every policy.
        for policy in ReplacementPolicy::ALL {
            for assoc in [1u32, 2, 4, 8] {
                let cfg = CacheConfig::new(assoc, 16, assoc * 16)
                    .unwrap()
                    .with_policy(policy)
                    .unwrap();
                let mut concrete = ConcreteState::new(&cfg);
                let mut projected = SetState::cold();
                let mut x = 0x2545_f491_4f6c_dd1du64;
                for _ in 0..5_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let b = x % (u64::from(assoc) + 3); // slight over-subscription
                    let hit = projected.access(policy, assoc, b);
                    assert_eq!(
                        concrete.access(MemBlockId(b)).is_hit(),
                        hit,
                        "{policy} assoc {assoc}: projection diverged on block {b}"
                    );
                    assert_eq!(
                        concrete.set(0),
                        projected
                            .ways()
                            .iter()
                            .map(|&w| MemBlockId(w))
                            .collect::<Vec<_>>(),
                        "{policy} assoc {assoc}: way contents diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn states_order_and_dedup_structurally() {
        let mut a = SetState::cold();
        a.access(ReplacementPolicy::Fifo, 2, 5);
        let mut b = SetState::cold();
        b.access(ReplacementPolicy::Fifo, 2, 5);
        assert_eq!(a, b);
        b.access(ReplacementPolicy::Fifo, 2, 9);
        let mut v = vec![b.clone(), a.clone(), b.clone()];
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 2);
        assert!(v.contains(&a) && v.contains(&b));
    }
}
