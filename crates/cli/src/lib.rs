//! The `rtpf` command-line front end.
//!
//! Lets a real-time engineer drive the whole toolchain from task
//! descriptions in the [`rtpf_isa::text`] format (or the built-in
//! Mälardalen skeletons via `suite:NAME`):
//!
//! ```text
//! rtpf analyze  task.rtpf --cache 2,16,512
//! rtpf optimize task.rtpf --cache 2,16,512 --verbose
//! rtpf simulate suite:fft1 --cache 2,16,512 --behavior worst --runs 3
//! rtpf sweep    suite:compress
//! rtpf fmt      task.rtpf
//! rtpf suite
//! ```
//!
//! Every command drives the shared [`rtpf_engine`] pipeline: flags are
//! folded into an [`EngineConfig`] profile and the command pulls the
//! stage artifacts it needs. All command logic lives in this library
//! (returning strings) so it is unit-testable; `main.rs` only does I/O.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

use rtpf_audit::{Code, DiagnosticSink, Level, Severity, SeverityConfig, SoundnessOptions, Span};
use rtpf_cache::{CacheConfig, RefineConfig, ReplacementPolicy, SpecError};
use rtpf_engine::{Engine, EngineConfig, EngineError};
use rtpf_isa::{InstrKind, Program};
use rtpf_sim::BranchBehavior;

/// A user-facing failure, separated by layer: argument/usage problems,
/// typed pipeline failures (wrapping the ISA/analysis/simulation error
/// they came from), and audit verdicts.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments or a malformed flag value.
    Usage(String),
    /// `--policy` named a replacement policy this build does not know.
    UnknownPolicy(String),
    /// A pipeline stage failed; carries the typed source error.
    Engine(EngineError),
    /// An audit rendered findings and failed (deny-level verdict), or a
    /// tool error was rendered through the diagnostic sink.
    Audit(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(s) | CliError::Audit(s) => f.write_str(s),
            CliError::UnknownPolicy(given) => {
                let valid: Vec<&str> = ReplacementPolicy::ALL.iter().map(|p| p.name()).collect();
                write!(
                    f,
                    "unknown replacement policy `{given}` (valid policies: {})",
                    valid.join(", ")
                )
            }
            CliError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for CliError {
    fn from(e: EngineError) -> Self {
        CliError::Engine(e)
    }
}

fn err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    /// Subcommand name.
    pub command: String,
    /// Program spec (`path` or `suite:NAME`), if the command takes one.
    pub spec: Option<String>,
    /// `--cache a,b,c`.
    pub cache: Option<(u32, u32, u32)>,
    /// `--l2 a:b:c[:policy]` — unified L2 behind the L1 (absent = the
    /// classic single-level hierarchy). Parsed and validated by
    /// [`CacheConfig::parse_spec`]; monotonicity against the L1 is
    /// checked when the hierarchy is assembled (`with_l2`).
    pub l2: Option<CacheConfig>,
    /// `--policy lru|fifo|plru` (L1 replacement policy; LRU by default).
    pub policy: Option<ReplacementPolicy>,
    /// `--refine on|off` (exact FIFO/PLRU refinement stage; on by
    /// default).
    pub refine: Option<bool>,
    /// `--refine-budget N` (per-node state budget of the refinement
    /// exploration).
    pub refine_budget: Option<u32>,
    /// `--penalty N` (miss penalty in cycles).
    pub penalty: Option<u64>,
    /// `--runs N`.
    pub runs: Option<u32>,
    /// `--seed N`.
    pub seed: Option<u64>,
    /// `--behavior worst|random`.
    pub behavior: Option<BranchBehavior>,
    /// `--rounds N` (optimizer).
    pub rounds: Option<u32>,
    /// `--verbose`.
    pub verbose: bool,
    /// `--profile` (sweep): print the aggregated per-stage pipeline
    /// profile and throughput.
    pub profile: bool,
    /// `--shards N` (sweep): run the configuration grid on the parallel
    /// scheduler partitioned into `N` worker groups (see
    /// [`rtpf_engine::Grid`]); absent = the classic serial sweep.
    pub shards: Option<usize>,
    /// `--threads N`: analysis worker threads per engine (classify
    /// fixpoint SCC scheduling + refinement fan-out; `0` = one per core).
    /// Outputs are byte-identical at any count. Absent = auto, except
    /// under `--shards`, where it defaults to 1 so the grid workers do
    /// not oversubscribe the cores.
    pub threads: Option<usize>,
    /// `--json` (audit): emit diagnostics as JSON lines.
    pub json: bool,
    /// `--optimize` (audit): additionally optimize each program and audit
    /// the transform.
    pub optimize: bool,
    /// `--deny warnings|RTPF0xx` occurrences, in order.
    pub deny: Vec<String>,
    /// `--allow RTPF0xx` occurrences, in order.
    pub allow: Vec<String>,
}

impl Options {
    /// Parses CLI arguments (without the binary name).
    ///
    /// # Errors
    ///
    /// Returns usage-style errors for unknown flags or malformed values.
    pub fn parse(args: &[String]) -> Result<Options, CliError> {
        let mut it = args.iter().peekable();
        let command = it.next().ok_or_else(|| err(USAGE))?.clone();
        let mut o = Options {
            command,
            spec: None,
            cache: None,
            l2: None,
            policy: None,
            refine: None,
            refine_budget: None,
            penalty: None,
            runs: None,
            seed: None,
            behavior: None,
            rounds: None,
            verbose: false,
            profile: false,
            shards: None,
            threads: None,
            json: false,
            optimize: false,
            deny: Vec::new(),
            allow: Vec::new(),
        };
        while let Some(a) = it.next() {
            match a.as_str() {
                "--cache" => {
                    let v = it.next().ok_or_else(|| err("--cache needs a,b,c"))?;
                    let parts: Vec<u32> = v
                        .split(',')
                        .map(|p| {
                            p.trim()
                                .parse()
                                .map_err(|_| err(format!("bad --cache {v}")))
                        })
                        .collect::<Result<_, _>>()?;
                    if parts.len() != 3 {
                        return Err(err(format!("--cache wants 3 numbers, got {v}")));
                    }
                    o.cache = Some((parts[0], parts[1], parts[2]));
                }
                "--l2" => {
                    let v = it.next().ok_or_else(|| err("--l2 needs a:b:c[:policy]"))?;
                    o.l2 = Some(parse_l2_spec(v)?);
                }
                "--policy" => {
                    let v = it
                        .next()
                        .ok_or_else(|| err("--policy needs lru|fifo|plru"))?;
                    o.policy = Some(
                        ReplacementPolicy::parse(v)
                            .ok_or_else(|| CliError::UnknownPolicy(v.clone()))?,
                    );
                }
                "--refine" => {
                    let v = it.next().ok_or_else(|| err("--refine needs on|off"))?;
                    o.refine = Some(match v.as_str() {
                        "on" => true,
                        "off" => false,
                        other => return Err(err(format!("--refine needs on|off, got {other}"))),
                    });
                }
                "--refine-budget" => {
                    o.refine_budget = Some(parse_num(it.next(), "--refine-budget")? as u32);
                }
                "--penalty" => {
                    o.penalty = Some(parse_num(it.next(), "--penalty")?);
                }
                "--runs" => o.runs = Some(parse_num(it.next(), "--runs")? as u32),
                "--seed" => o.seed = Some(parse_num(it.next(), "--seed")?),
                "--rounds" => o.rounds = Some(parse_num(it.next(), "--rounds")? as u32),
                "--behavior" => {
                    let v = it
                        .next()
                        .ok_or_else(|| err("--behavior needs worst|random"))?;
                    o.behavior = Some(match v.as_str() {
                        "worst" => BranchBehavior::WorstLike,
                        "random" => BranchBehavior::Random,
                        other => return Err(err(format!("unknown behavior {other}"))),
                    });
                }
                "--verbose" | "-v" => o.verbose = true,
                "--profile" => o.profile = true,
                "--shards" => {
                    let n = parse_num(it.next(), "--shards")? as usize;
                    if n == 0 {
                        return Err(err("--shards wants at least 1"));
                    }
                    o.shards = Some(n);
                }
                "--threads" => {
                    o.threads = Some(parse_num(it.next(), "--threads")? as usize);
                }
                "--json" => o.json = true,
                "--optimize" => o.optimize = true,
                "--deny" => {
                    let v = it
                        .next()
                        .ok_or_else(|| err("--deny needs `warnings` or an RTPF0xx code"))?;
                    o.deny.push(v.clone());
                }
                "--allow" => {
                    let v = it
                        .next()
                        .ok_or_else(|| err("--allow needs an RTPF0xx code"))?;
                    o.allow.push(v.clone());
                }
                flag if flag.starts_with("--") => return Err(err(format!("unknown flag {flag}"))),
                spec => {
                    if o.spec.is_some() {
                        return Err(err(format!("unexpected argument {spec}")));
                    }
                    o.spec = Some(spec.to_string());
                }
            }
        }
        Ok(o)
    }

    fn cache_config(&self) -> Result<CacheConfig, CliError> {
        let (a, b, c) = self.cache.ok_or_else(|| {
            err("this command needs --cache ASSOC,BLOCK,CAPACITY (e.g. --cache 2,16,512)")
        })?;
        let cfg = EngineConfig::geometry(a, b, c)
            .map_err(|e| CliError::Engine(EngineError::Geometry(e)))?;
        self.apply_policy(cfg)
    }

    /// Applies `--policy` (when given) to a geometry.
    fn apply_policy(&self, config: CacheConfig) -> Result<CacheConfig, CliError> {
        match self.policy {
            Some(p) => config
                .with_policy(p)
                .map_err(|e| CliError::Engine(EngineError::Geometry(e))),
            None => Ok(config),
        }
    }

    /// Applies `--l2` (when given) to an engine profile, validating the
    /// hierarchy.
    fn apply_l2(&self, cfg: EngineConfig) -> Result<EngineConfig, CliError> {
        match self.l2 {
            Some(l2) => cfg
                .with_l2(l2)
                .map_err(|e| CliError::Engine(EngineError::Geometry(e))),
            None => Ok(cfg),
        }
    }

    /// Folds the interactive flags into the engine profile this command
    /// runs under.
    fn engine_config(&self, cache: CacheConfig) -> Result<EngineConfig, CliError> {
        let mut cfg = EngineConfig::interactive(cache);
        if let Some(p) = self.penalty {
            cfg = cfg.with_penalty(p);
        }
        if let Some(b) = self.behavior {
            cfg = cfg.with_behavior(b);
        }
        if let Some(s) = self.seed {
            cfg = cfg.with_seed(s);
        }
        if let Some(r) = self.runs {
            cfg = cfg.with_runs(r);
        }
        if let Some(r) = self.rounds {
            cfg = cfg.with_rounds(r);
        }
        self.apply_l2(
            cfg.with_threads(self.resolved_threads())
                .with_refine(self.refine_config()),
        )
    }

    /// The batch profile `sweep` and `audit --optimize` share: a small
    /// fixed optimizer budget so all 36 configurations stay interactive.
    fn batch_config(&self, cache: CacheConfig) -> Result<EngineConfig, CliError> {
        let mut cfg = EngineConfig::cli_sweep(cache);
        if let Some(p) = self.penalty {
            cfg = cfg.with_penalty(p);
        }
        if let Some(r) = self.rounds {
            cfg = cfg.with_rounds(r);
        }
        self.apply_l2(
            cfg.with_threads(self.resolved_threads())
                .with_refine(self.refine_config()),
        )
    }

    /// `--threads` with the `--shards` interaction resolved: explicit
    /// values win; otherwise sharded grids pin each engine to one thread
    /// (the grid's worker groups already saturate the cores) and
    /// everything else goes auto (`0` = one per core).
    fn resolved_threads(&self) -> usize {
        self.threads.unwrap_or(usize::from(self.shards.is_some()))
    }

    /// Folds `--refine` / `--refine-budget` over the default-on stage
    /// configuration.
    fn refine_config(&self) -> RefineConfig {
        let mut r = RefineConfig::on();
        if let Some(enabled) = self.refine {
            r.enabled = enabled;
        }
        if let Some(budget) = self.refine_budget {
            r.max_states = budget;
        }
        r
    }
}

fn parse_num(v: Option<&String>, flag: &str) -> Result<u64, CliError> {
    let v = v.ok_or_else(|| err(format!("{flag} needs a number")))?;
    v.parse().map_err(|_| err(format!("bad {flag} value {v}")))
}

/// Parses `--l2 a:b:c[:policy]` via the shared [`CacheConfig::parse_spec`]
/// grammar, mapping spec errors onto the CLI's error layers.
fn parse_l2_spec(v: &str) -> Result<CacheConfig, CliError> {
    CacheConfig::parse_spec(v).map_err(|e| match e {
        SpecError::Policy(name) => CliError::UnknownPolicy(name),
        SpecError::Config(c) => CliError::Engine(EngineError::Geometry(c)),
        malformed => err(format!("--l2: {malformed}")),
    })
}

/// Usage text.
pub const USAGE: &str = "usage: rtpf <command> [args]

commands:
  analyze  <file|suite:NAME> --cache a,b,c [--l2 a:b:c[:policy]]
           [--policy lru|fifo|plru] [--penalty N]
           [--refine on|off] [--refine-budget N] [--threads N]
  optimize <file|suite:NAME> --cache a,b,c [--l2 a:b:c[:policy]]
           [--policy lru|fifo|plru] [--penalty N]
           [--rounds N] [--refine on|off] [--refine-budget N] [--threads N] [-v]
  simulate <file|suite:NAME> --cache a,b,c [--l2 a:b:c[:policy]]
           [--policy lru|fifo|plru] [--runs N]
           [--seed N] [--behavior worst|random]
  sweep    <file|suite:NAME> [--l2 a:b:c[:policy]] [--policy lru|fifo|plru]
           [--refine on|off]
           [--refine-budget N] [--profile] [--shards N] [--threads N]
                                            # all 36 paper configurations
  audit    <file|suite:NAME|suite:all> [--cache a,b,c] [--l2 a:b:c[:policy]]
           [--policy lru|fifo|plru]
           [--refine on|off] [--refine-budget N] [--json] [--optimize]
           [--deny warnings|RTPF0xx] [--allow RTPF0xx] [-v]
  fmt      <file>                           # parse + pretty-print
  suite                                     # list built-in benchmarks
  serve    [--addr HOST:PORT] [--workers N] [--queue N] [--store-dir PATH]
           [--max-bytes N] [--shards N] [--port-file PATH]
                                            # run the rtpfd daemon

the program format is documented in `rtpf_isa::text`; `suite:NAME` loads a
built-in Mälardalen skeleton (see `rtpf suite`). `--policy` selects the
cache replacement policy (default lru; fifo and tree-plru are analyzed via
a sound competitiveness reduction, see DESIGN.md §10). `--l2` puts a
unified second level behind the L1 (same block size, strictly larger
capacity; optional fourth field = L2 replacement policy, default lru) —
the whole pipeline then runs the two-level Hardy/Puaut analysis
(DESIGN.md §14). `--refine` toggles
the exact per-set FIFO/PLRU refinement of unclassified references
(DESIGN.md §12; on by default, a no-op under lru) and `--refine-budget`
caps its per-node state count (default 64). `--threads` sets the analysis
worker threads per engine (0 = one per core; results are byte-identical
at any count, DESIGN.md §13). `audit` runs the IR lints and
the abstract-vs-concrete soundness audit (plus the transform audit with
--optimize) over every Table 2 configuration unless --cache narrows it;
deny-level findings make the command fail. `serve` starts the analysis
daemon (same entry point as the `rtpfd` binary, DESIGN.md §15): HTTP/1.1
+ JSON endpoints whose responses are byte-identical to the library
path, backed by the shared single-flight artifact store.";

/// Loads a program from `path` or `suite:NAME`.
///
/// # Errors
///
/// Fails when the file is unreadable/malformed or the suite name unknown.
pub fn load_program(spec: &str) -> Result<(String, Program), CliError> {
    Ok(rtpf_engine::load_program(spec)?)
}

/// Executes a parsed command, returning the output to print.
///
/// # Errors
///
/// Propagates argument, I/O, and analysis failures as [`CliError`].
pub fn run(o: &Options) -> Result<String, CliError> {
    match o.command.as_str() {
        "analyze" => cmd_analyze(o),
        "optimize" => cmd_optimize(o),
        "simulate" => cmd_simulate(o),
        "sweep" => cmd_sweep(o),
        "audit" => cmd_audit(o),
        "fmt" => cmd_fmt(o),
        "suite" => Ok(cmd_suite()),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(err(format!("unknown command {other}\n\n{USAGE}"))),
    }
}

fn spec_of(o: &Options) -> Result<&str, CliError> {
    o.spec
        .as_deref()
        .ok_or_else(|| err("this command needs a program (a file or suite:NAME)"))
}

fn cmd_analyze(o: &Options) -> Result<String, CliError> {
    let (name, p) = load_program(spec_of(o)?)?;
    let engine = Engine::new(o.engine_config(o.cache_config()?)?);
    let config = *engine.config().cache();
    let timing = engine.config().timing();
    let a = engine.analysis(&p)?;
    let (hit, miss, unk) = a.classification_counts();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "program {name}: {} instrs ({} B)",
        p.instr_count(),
        p.code_bytes()
    );
    let _ = writeln!(s, "cache {config} ({} sets), {timing}", config.n_sets());
    if let Some(l2) = engine.config().l2() {
        let _ = writeln!(s, "L2 {l2} ({} sets), unified behind L1", l2.n_sets());
    }
    let _ = writeln!(
        s,
        "references: {} over {} contexts",
        a.acfg().len(),
        a.vivu().len()
    );
    let _ = writeln!(
        s,
        "classification: {hit} always-hit / {miss} always-miss / {unk} unclassified"
    );
    let rs = a.refine_stats();
    if rs.sets_targeted > 0 {
        let _ = writeln!(
            s,
            "refinement {}: {} sets explored ({} over budget), {} upgraded to \
             always-hit, {} to always-miss",
            a.refine_config(),
            rs.sets_targeted,
            rs.sets_exhausted,
            rs.refined_hits,
            rs.refined_misses
        );
    }
    let _ = writeln!(s, "WCET (memory): {} cycles", a.tau_w());
    let _ = writeln!(
        s,
        "WCET-path accesses: {} ({} misses)",
        a.wcet_accesses(),
        a.wcet_misses()
    );
    let pr = rtpf_wcet::persistence_report(&p, &a);
    if pr.first_miss_refs > 0 {
        let _ = writeln!(
            s,
            "persistence: {} first-miss refs; a first-miss-aware bound could \
             recover up to {} cycles ({:.1}%)",
            pr.first_miss_refs,
            pr.recoverable_cycles,
            100.0 * pr.recoverable_cycles as f64 / a.tau_w() as f64
        );
    }
    Ok(s)
}

fn cmd_optimize(o: &Options) -> Result<String, CliError> {
    let (name, p) = load_program(spec_of(o)?)?;
    let engine = Engine::new(o.engine_config(o.cache_config()?)?);
    let config = *engine.config().cache();
    let (r, theorem) = engine.verified(&p)?;

    let mut s = String::new();
    let rep = &r.report;
    let _ = writeln!(s, "program {name} on {config}:");
    let _ = writeln!(
        s,
        "  inserted {} prefetches over {} rounds ({} candidates seen)",
        rep.inserted, rep.rounds, rep.candidates_seen
    );
    let _ = writeln!(
        s,
        "  WCET (memory): {} -> {} cycles ({:+.2}%)",
        rep.wcet_before,
        rep.wcet_after,
        100.0 * (rep.wcet_after as f64 / rep.wcet_before as f64 - 1.0)
    );
    let _ = writeln!(
        s,
        "  WCET-path misses: {} -> {}",
        rep.misses_before, rep.misses_after
    );
    let _ = writeln!(
        s,
        "  Theorem 1: equivalent={} wcet_preserved={}",
        theorem.equivalent, theorem.wcet_preserved
    );
    if o.verbose {
        let _ = writeln!(s, "  placements:");
        for b in r.program.block_ids() {
            for (pos, &i) in r.program.block(b).instrs().iter().enumerate() {
                if let InstrKind::Prefetch { target } = r.program.instr(i).kind {
                    let _ = writeln!(
                        s,
                        "    {b}[{pos}]: prefetch block of {target} \
                         (addr {:#x})",
                        r.analysis_after.layout().addr(target)
                    );
                }
            }
        }
    }
    Ok(s)
}

fn cmd_simulate(o: &Options) -> Result<String, CliError> {
    let (name, p) = load_program(spec_of(o)?)?;
    let engine = Engine::new(o.engine_config(o.cache_config()?)?);
    let config = *engine.config().cache();
    let run = engine.simulated(&p)?;
    let [e45, e32] = engine.energies(&run);
    let mut s = String::new();
    match engine.config().l2() {
        Some(l2) => {
            let _ = writeln!(
                s,
                "program {name} on {config} + L2 {l2} ({} runs):",
                run.runs
            );
        }
        None => {
            let _ = writeln!(s, "program {name} on {config} ({} runs):", run.runs);
        }
    }
    let _ = writeln!(s, "  ACET (memory): {:.0} cycles", run.acet_cycles());
    let _ = writeln!(
        s,
        "  accesses {} | hits {} | misses {} (miss rate {:.2}%)",
        run.stats.accesses,
        run.stats.hits,
        run.stats.misses,
        100.0 * run.miss_rate()
    );
    if engine.config().l2().is_some() {
        let _ = writeln!(
            s,
            "  L2: accesses {} | hits {} | misses {} (fills {})",
            run.stats.l2_accesses, run.stats.l2_hits, run.stats.l2_misses, run.stats.l2_fills
        );
    }
    let _ = writeln!(
        s,
        "  prefetches issued {} (useful {}), stall cycles {}",
        run.prefetches_issued, run.prefetch_useful, run.stall_cycles
    );
    let _ = writeln!(
        s,
        "  energy: {:.1} nJ @45nm, {:.1} nJ @32nm",
        e45.total_nj(),
        e32.total_nj()
    );
    Ok(s)
}

fn cmd_sweep(o: &Options) -> Result<String, CliError> {
    let (name, p) = load_program(spec_of(o)?)?;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "program {name}: WCET before/after per Table 2 configuration"
    );
    let _ = writeln!(
        s,
        "{:<5} {:>2} {:>3} {:>6} {:>12} {:>12} {:>8} {:>4}",
        "k", "a", "b", "c", "wcet_orig", "wcet_opt", "delta", "pf"
    );
    let configs: Vec<(String, CacheConfig)> = CacheConfig::paper_configs()
        .into_iter()
        .map(|(k, c)| Ok((k, o.apply_policy(c)?)))
        .collect::<Result<_, CliError>>()?;
    // Under --l2, Table 2 geometries that cannot sit beneath the shared
    // L2 (block-size mismatch, or capacity not strictly smaller) are
    // skipped up front rather than failing the whole sweep — the same
    // policy the engine smoke drill uses.
    let mut skipped: Vec<String> = Vec::new();
    let mut configs = configs;
    if o.l2.is_some() {
        let mut kept = Vec::with_capacity(configs.len());
        for (k, c) in configs {
            if o.batch_config(c).is_ok() {
                kept.push((k, c));
            } else {
                skipped.push(k);
            }
        }
        configs = kept;
        if configs.is_empty() {
            return Err(CliError::Usage(
                "--l2 leaves no Table 2 configuration to sweep (every geometry is \
                 incompatible with the given L2)"
                    .into(),
            ));
        }
    }
    let t0 = std::time::Instant::now();
    // Without --shards: one worker, one shard — the classic serial sweep.
    // With --shards N: the engine's sharded grid scheduler, one worker
    // group per shard. Output rows come back in configuration order either
    // way, so the rendered table is identical.
    let grid = rtpf_engine::Grid {
        workers: if o.shards.is_some() { 0 } else { 1 },
        shards: o.shards.unwrap_or(1),
        progress_every: 0,
        label: "sweep",
    };
    let rows: Vec<Result<(String, rtpf_wcet::AnalysisProfile), CliError>> =
        grid.run(&configs, |_, (k, config)| {
            let engine = Engine::new(o.batch_config(*config)?);
            let r = engine
                .optimized(&p)
                .map_err(|e| tool_error(&name, Some(k), &e))?;
            let mut line = String::new();
            let _ = writeln!(
                line,
                "{:<5} {:>2} {:>3} {:>6} {:>12} {:>12} {:>7.2}% {:>4}",
                k,
                config.assoc(),
                config.block_bytes(),
                config.capacity_bytes(),
                r.report.wcet_before,
                r.report.wcet_after,
                100.0 * (r.report.wcet_after as f64 / r.report.wcet_before as f64 - 1.0),
                r.report.inserted
            );
            Ok((line, engine.profile()))
        });
    let mut profile = rtpf_wcet::AnalysisProfile::default();
    let mut units = 0u32;
    for row in rows {
        let (line, prof) = row?;
        s.push_str(&line);
        profile.add(&prof);
        units += 1;
    }
    if !skipped.is_empty() {
        let _ = writeln!(
            s,
            "skipped {} configuration(s) that cannot sit under --l2: {}",
            skipped.len(),
            skipped.join(", ")
        );
    }
    if o.profile {
        let elapsed = t0.elapsed().as_secs_f64();
        let _ = writeln!(s, "\nanalysis profile over {units} configurations:");
        let _ = writeln!(s, "{profile}");
        let _ = writeln!(
            s,
            "throughput: {:.2} units/s ({:.2} s wall clock)",
            f64::from(units) / elapsed,
            elapsed
        );
    }
    Ok(s)
}

/// Renders a tool-level failure through the shared diagnostic renderer so
/// `sweep` and `audit` fail uniformly (RTPF090). The engine error's
/// rendering already names the failed stage.
fn tool_error(program: &str, config: Option<&str>, e: &EngineError) -> CliError {
    let mut sink = DiagnosticSink::new(SeverityConfig::new());
    let mut span = Span::program(program);
    span.config = config.map(str::to_string);
    sink.report(Code::ToolError, span, e.to_string(), None);
    CliError::Audit(sink.render_text().trim_end().to_string())
}

/// Builds the audit severity policy from `--deny`/`--allow` flags.
fn severity_config(o: &Options) -> Result<SeverityConfig, CliError> {
    let mut cfg = SeverityConfig::new();
    for d in &o.deny {
        if d == "warnings" {
            cfg.deny_warnings = true;
        } else {
            let code = Code::parse(d).ok_or_else(|| err(format!("unknown lint code {d}")))?;
            cfg.set(code, Level::Deny);
        }
    }
    for a in &o.allow {
        let code = Code::parse(a).ok_or_else(|| err(format!("unknown lint code {a}")))?;
        cfg.set(code, Level::Allow);
    }
    Ok(cfg)
}

fn cmd_audit(o: &Options) -> Result<String, CliError> {
    let spec = spec_of(o)?;
    let programs: Vec<(String, Program)> = if spec == "suite:all" {
        rtpf_suite::catalog()
            .into_iter()
            .map(|b| (b.name.to_string(), b.program))
            .collect()
    } else {
        vec![load_program(spec)?]
    };
    let configs: Vec<(String, CacheConfig)> = match o.cache {
        Some(_) => vec![("cli".to_string(), o.cache_config()?)],
        None => CacheConfig::paper_configs()
            .into_iter()
            .map(|(k, c)| Ok((k, o.apply_policy(c)?)))
            .collect::<Result<_, CliError>>()?,
    };
    let sev = severity_config(o)?;
    let sopts = SoundnessOptions {
        seed: o.seed.unwrap_or(SoundnessOptions::default().seed),
        ..SoundnessOptions::default()
    };

    let mut sink = DiagnosticSink::new(sev.clone());
    let mut s = String::new();
    let mut score_sum = 0.0;
    let mut score_n = 0u32;
    for (name, p) in &programs {
        let mut psink = DiagnosticSink::new(sev.clone());
        rtpf_audit::audit_ir(p, &mut psink);
        sink.absorb(psink, None);
        for (k, config) in &configs {
            // One engine per (program, configuration) unit: the transform
            // audit pulls the engine's optimize artifact, while the
            // soundness audit force-recomputes its analysis with cache
            // bypass so its verdict cannot be influenced by a poisoned
            // artifact (see DESIGN.md §9).
            let engine = Engine::new(o.batch_config(*config)?.with_severity(sev.clone()));
            let mut csink = DiagnosticSink::new(engine.config().severity().clone());
            match engine.audit_soundness(p, &mut csink, &sopts, true) {
                Ok(sum) => {
                    score_sum += sum.precision_score;
                    score_n += 1;
                }
                Err(e) => {
                    let mut span = Span::program(name);
                    span.config = Some(k.clone());
                    csink.report(Code::ToolError, span, e.to_string(), None);
                }
            }
            if o.optimize {
                if let Err(e) = engine.audit_transform(p, &mut csink) {
                    let mut span = Span::program(name);
                    span.config = Some(k.clone());
                    let msg = match &e {
                        EngineError::Optimize(_) => e.to_string(),
                        EngineError::Analysis(inner) => {
                            format!("transform audit failed: {inner}")
                        }
                        other => format!("transform audit failed: {other}"),
                    };
                    csink.report(Code::ToolError, span, msg, None);
                }
            }
            sink.absorb(csink, Some(k));
        }
    }

    let (deny, warn, note) = sink.counts();
    if o.json {
        s.push_str(&sink.render_json());
    } else {
        for d in sink.diagnostics() {
            if d.severity == Severity::Note && !o.verbose {
                continue;
            }
            let _ = writeln!(s, "{}[{}]: {} ({})", d.severity, d.code, d.message, d.span);
            if let Some(h) = &d.help {
                let _ = writeln!(s, "  help: {h}");
            }
        }
        let _ = writeln!(
            s,
            "audit: {} program(s) x {} configuration(s): {deny} deny, {warn} warn, {note} note",
            programs.len(),
            configs.len()
        );
        if score_n > 0 {
            let _ = writeln!(
                s,
                "soundness: mean precision score {:.3} over {score_n} analyses",
                score_sum / f64::from(score_n)
            );
        }
        if note > 0 && !o.verbose {
            let _ = writeln!(s, "({note} note-level findings hidden; pass -v to show)");
        }
    }
    if sink.has_denials() {
        return Err(CliError::Audit(format!(
            "{s}audit failed: {deny} deny-level finding(s)"
        )));
    }
    Ok(s)
}

fn cmd_fmt(o: &Options) -> Result<String, CliError> {
    let spec = spec_of(o)?;
    let src = std::fs::read_to_string(spec).map_err(|e| {
        CliError::Engine(EngineError::Read {
            path: spec.to_string(),
            error: e.to_string(),
        })
    })?;
    let (name, shape) = rtpf_isa::text::parse(&src).map_err(|e| {
        CliError::Engine(EngineError::Parse {
            path: spec.to_string(),
            error: e.to_string(),
        })
    })?;
    Ok(rtpf_isa::text::write(&name, &shape))
}

fn cmd_suite() -> String {
    let mut s = String::from("built-in Mälardalen skeletons (use as suite:NAME):\n");
    for b in rtpf_suite::catalog() {
        let _ = writeln!(
            s,
            "  {:<4} {:<14} {:>6} instrs  {}",
            b.id,
            b.name,
            b.program.instr_count(),
            b.description
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_option_set() {
        let o = Options::parse(&args(&[
            "optimize",
            "suite:fft1",
            "--cache",
            "2,16,512",
            "--penalty",
            "30",
            "--rounds",
            "5",
            "--verbose",
        ]))
        .expect("parses");
        assert_eq!(o.command, "optimize");
        assert_eq!(o.spec.as_deref(), Some("suite:fft1"));
        assert_eq!(o.cache, Some((2, 16, 512)));
        assert_eq!(o.penalty, Some(30));
        assert_eq!(o.rounds, Some(5));
        assert!(o.verbose);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_cache() {
        assert!(Options::parse(&args(&["analyze", "--bogus"])).is_err());
        assert!(Options::parse(&args(&["analyze", "x", "--cache", "2,16"])).is_err());
        assert!(Options::parse(&args(&["analyze", "x", "--cache", "a,b,c"])).is_err());
    }

    #[test]
    fn parses_policy_flag() {
        let o = Options::parse(&args(&[
            "analyze", "suite:bs", "--cache", "2,16,512", "--policy", "fifo",
        ]))
        .expect("parses");
        assert_eq!(o.policy, Some(ReplacementPolicy::Fifo));
        // Case-insensitive, like the rest of the flag grammar.
        let o = Options::parse(&args(&["sweep", "suite:bs", "--policy", "PLRU"])).expect("parses");
        assert_eq!(o.policy, Some(ReplacementPolicy::Plru));
    }

    #[test]
    fn parses_refine_flags() {
        let o = Options::parse(&args(&[
            "analyze", "suite:bs", "--cache", "2,16,512", "--refine", "off",
        ]))
        .expect("parses");
        assert_eq!(o.refine, Some(false));
        assert!(!o.refine_config().enabled);

        let o = Options::parse(&args(&[
            "sweep",
            "suite:bs",
            "--refine",
            "on",
            "--refine-budget",
            "128",
        ]))
        .expect("parses");
        assert_eq!(o.refine, Some(true));
        assert_eq!(o.refine_budget, Some(128));
        assert_eq!(
            o.refine_config(),
            RefineConfig {
                enabled: true,
                max_states: 128
            }
        );

        // Default: on, with the library default budget.
        let o =
            Options::parse(&args(&["analyze", "suite:bs", "--cache", "2,16,512"])).expect("parses");
        assert_eq!(o.refine_config(), RefineConfig::on());

        assert!(Options::parse(&args(&["analyze", "x", "--refine", "maybe"])).is_err());
        assert!(Options::parse(&args(&["analyze", "x", "--refine-budget", "many"])).is_err());
    }

    #[test]
    fn unknown_policy_is_a_typed_error_listing_valid_names() {
        let e = Options::parse(&args(&["analyze", "suite:bs", "--policy", "mru"])).unwrap_err();
        assert!(
            matches!(e, CliError::UnknownPolicy(ref p) if p == "mru"),
            "{e:?}"
        );
        let msg = e.to_string();
        assert!(msg.contains("mru"), "{msg}");
        for p in ReplacementPolicy::ALL {
            assert!(msg.contains(p.name()), "{msg} should list {p}");
        }
        // A missing value is a plain usage error.
        assert!(matches!(
            Options::parse(&args(&["analyze", "--policy"])).unwrap_err(),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn analyze_accepts_every_policy() {
        for p in ReplacementPolicy::ALL {
            let o = Options::parse(&args(&[
                "analyze",
                "suite:bs",
                "--cache",
                "2,16,512",
                "--policy",
                p.name(),
            ]))
            .expect("parses");
            let out = run(&o).expect("runs");
            assert!(out.contains("WCET (memory):"), "{p}: {out}");
            if p != ReplacementPolicy::Lru {
                assert!(
                    out.contains(p.name()),
                    "{p} should appear in the header: {out}"
                );
            }
        }
    }

    #[test]
    fn parses_l2_flag_with_and_without_policy() {
        let o = Options::parse(&args(&[
            "analyze",
            "suite:bs",
            "--cache",
            "2,16,512",
            "--l2",
            "4:16:8192",
        ]))
        .expect("parses");
        assert_eq!(o.l2, Some(CacheConfig::new(4, 16, 8192).expect("valid l2")));

        let o = Options::parse(&args(&[
            "simulate",
            "suite:bs",
            "--cache",
            "2,16,512",
            "--l2",
            "8:16:16384:fifo",
        ]))
        .expect("parses");
        let expected = CacheConfig::new(8, 16, 16384)
            .and_then(|c| c.with_policy(ReplacementPolicy::Fifo))
            .expect("valid l2");
        assert_eq!(o.l2, Some(expected));

        assert!(Options::parse(&args(&["analyze", "x", "--l2", "4:16"])).is_err());
        assert!(Options::parse(&args(&["analyze", "x", "--l2", "a:b:c"])).is_err());
        assert!(matches!(
            Options::parse(&args(&["analyze", "x", "--l2", "4:16:8192:mru"])).unwrap_err(),
            CliError::UnknownPolicy(ref p) if p == "mru"
        ));
    }

    #[test]
    fn analyze_and_simulate_run_two_level() {
        let o = Options::parse(&args(&[
            "analyze",
            "suite:bs",
            "--cache",
            "2,16,512",
            "--l2",
            "4:16:8192",
        ]))
        .expect("parses");
        let out = run(&o).expect("runs");
        assert!(out.contains("L2 (4, 16, 8192)"), "{out}");
        assert!(out.contains("WCET (memory):"), "{out}");

        let o = Options::parse(&args(&[
            "simulate",
            "suite:bs",
            "--cache",
            "2,16,512",
            "--l2",
            "4:16:8192",
            "--runs",
            "1",
        ]))
        .expect("parses");
        let out = run(&o).expect("runs");
        assert!(out.contains("+ L2"), "{out}");
        assert!(out.contains("L2: accesses"), "{out}");
    }

    #[test]
    fn non_monotone_l2_is_a_typed_hierarchy_error() {
        // Equal capacity: rejected when the hierarchy is assembled.
        let o = Options::parse(&args(&[
            "analyze", "suite:bs", "--cache", "2,16,512", "--l2", "4:16:512",
        ]))
        .expect("parses");
        let e = run(&o).unwrap_err();
        assert!(
            matches!(e, CliError::Engine(EngineError::Geometry(_))),
            "{e:?}"
        );
        assert!(e.to_string().contains("strictly larger"), "{e}");

        // Block mismatch: same typed rejection.
        let o = Options::parse(&args(&[
            "analyze",
            "suite:bs",
            "--cache",
            "2,16,512",
            "--l2",
            "4:32:8192",
        ]))
        .expect("parses");
        let e = run(&o).unwrap_err();
        assert!(e.to_string().contains("block size"), "{e}");
    }

    #[test]
    fn suite_listing_names_all_programs() {
        let out = cmd_suite();
        assert!(out.contains("matmult"));
        assert!(out.contains("p37"));
    }

    #[test]
    fn analyze_on_a_suite_program() {
        let o =
            Options::parse(&args(&["analyze", "suite:bs", "--cache", "2,16,512"])).expect("parses");
        let out = run(&o).expect("runs");
        assert!(out.contains("WCET (memory):"));
        assert!(out.contains("classification:"));
    }

    #[test]
    fn optimize_reports_theorem() {
        let o = Options::parse(&args(&[
            "optimize",
            "suite:crc",
            "--cache",
            "2,16,512",
            "--rounds",
            "2",
        ]))
        .expect("parses");
        let out = run(&o).expect("runs");
        assert!(out.contains("Theorem 1: equivalent=true wcet_preserved=true"));
    }

    #[test]
    fn simulate_prints_energy() {
        let o = Options::parse(&args(&[
            "simulate", "suite:bs", "--cache", "2,16,512", "--runs", "1",
        ]))
        .expect("parses");
        let out = run(&o).expect("runs");
        assert!(out.contains("nJ @45nm"));
    }

    #[test]
    fn sweep_profile_prints_breakdown() {
        let o = Options::parse(&args(&["sweep", "suite:bs", "--profile", "--rounds", "1"]))
            .expect("parses");
        let out = run(&o).expect("runs");
        assert!(out.contains("analysis profile over 36 configurations"));
        assert!(out.contains("fixpoint"));
        assert!(out.contains("units/s"));
        // The engine wires stage-level wall clock and store counters into
        // the profile: the sweep runs the Optimize stage, so the stage
        // breakdown line must be present.
        assert!(out.contains("stages:"), "{out}");
        assert!(out.contains("optimize"), "{out}");
        assert!(out.contains("misses"), "{out}");
    }

    #[test]
    fn sweep_under_l2_skips_incompatible_geometries() {
        // Table 2 mixes 8/16/32-byte blocks and capacities up to the L2's
        // size, so a shared L2 cannot sit over all 36 geometries; the
        // sweep must run the compatible ones and report the rest skipped
        // rather than fail.
        let o = Options::parse(&args(&[
            "sweep",
            "suite:bs",
            "--l2",
            "8:16:16384",
            "--rounds",
            "1",
        ]))
        .expect("parses");
        let out = run(&o).expect("runs");
        assert!(
            out.contains("skipped") && out.contains("cannot sit under --l2"),
            "{out}"
        );
        // 16-byte-block geometries strictly smaller than 16 KiB survive.
        assert!(out.lines().any(|l| l.contains(" 16 ")), "{out}");
    }

    #[test]
    fn unknown_command_shows_usage() {
        let o = Options::parse(&args(&["frobnicate"])).expect("parses");
        let e = run(&o).unwrap_err();
        assert!(e.to_string().contains("usage:"));
    }

    #[test]
    fn missing_cache_is_a_clear_error() {
        let o = Options::parse(&args(&["analyze", "suite:bs"])).expect("parses");
        let e = run(&o).unwrap_err();
        assert!(e.to_string().contains("--cache"));
    }

    #[test]
    fn load_program_rejects_unknown_suite() {
        assert!(load_program("suite:doom").is_err());
    }

    #[test]
    fn errors_are_typed_and_preserve_legacy_messages() {
        // Pipeline failures carry their typed source error; the rendered
        // message is exactly what the string-typed CLI printed before.
        let e = load_program("suite:doom").unwrap_err();
        assert!(matches!(e, CliError::Engine(EngineError::UnknownSuite(_))));
        assert_eq!(
            e.to_string(),
            "unknown suite program doom (try `rtpf suite`)"
        );
        assert!(std::error::Error::source(&e).is_some());

        let e = load_program("/no/such/file.rtpf").unwrap_err();
        assert!(matches!(e, CliError::Engine(EngineError::Read { .. })));
        assert!(e.to_string().starts_with("cannot read /no/such/file.rtpf:"));

        let o =
            Options::parse(&args(&["analyze", "suite:bs", "--cache", "3,16,512"])).expect("parses");
        let e = run(&o).unwrap_err();
        assert!(matches!(e, CliError::Engine(EngineError::Geometry(_))));
        assert!(e.to_string().starts_with("invalid cache geometry:"));

        let o = Options::parse(&args(&["analyze", "suite:bs"])).expect("parses");
        assert!(matches!(run(&o).unwrap_err(), CliError::Usage(_)));
    }
}
