//! `rtpf` binary: thin I/O shell over [`rtpf_cli`].

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match rtpf_cli::Options::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match rtpf_cli::run(&options) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
