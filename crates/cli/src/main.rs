//! `rtpf` binary: thin I/O shell over [`rtpf_cli`].

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `serve` runs the daemon loop rather than producing a string, so it
    // bypasses the string-returning command layer.
    if args.first().map(String::as_str) == Some("serve") {
        if let Err(m) = rtpf_serve::serve_main(&args[1..]) {
            eprintln!("rtpf serve: {m}");
            std::process::exit(2);
        }
        return;
    }
    let options = match rtpf_cli::Options::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match rtpf_cli::run(&options) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
