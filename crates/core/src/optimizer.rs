//! The iterative prefetch-insertion optimizer (paper Algorithms 1–3).

use rtpf_cache::{CacheConfig, HierarchyConfig, MemTiming, RefineConfig};
use rtpf_isa::{InstrId, InstrKind, Layout, Program};
use rtpf_wcet::{AnalysisError, AnalysisProfile, WcetAnalysis};

use crate::candidates;
use crate::path::WcetPath;

/// Tuning knobs of the optimizer.
#[derive(Clone, Copy, Debug)]
pub struct OptimizeParams {
    /// Memory timing (hit/miss cycles and the prefetch latency `Λ`).
    pub timing: MemTiming,
    /// Maximum optimize–verify rounds.
    pub max_rounds: u32,
    /// Hard cap on inserted prefetch instructions.
    pub max_prefetches: u32,
    /// Cap on one-at-a-time verification attempts within a single round
    /// (only reached when a batch was rejected).
    pub max_singles_per_round: u32,
    /// Enforce the effectiveness condition (Definition 10). Disabling it
    /// mimics the WCET-only prior work (paper ref [5]) that inserts the
    /// prefetch without checking that `Λ` fits before the use — the
    /// `ablation_criterion` benchmark measures what that costs.
    pub check_effectiveness: bool,
    /// Re-analyse each verification candidate incrementally from the
    /// current accepted analysis (identical results, much cheaper) instead
    /// of from scratch. Disable to measure the speedup or to force the
    /// legacy path.
    pub incremental: bool,
    /// Worker threads for speculative single-candidate verification after
    /// a batch rejection: `0` = one per available core, `1` = sequential.
    /// Any setting yields bit-identical results; see
    /// [`Optimizer::run`].
    pub verify_workers: usize,
    /// Exact per-set FIFO/PLRU refinement applied behind every
    /// classification the optimizer consumes (`mcost`, profitability, and
    /// the verification analyses alike). A no-op under LRU.
    pub refine: RefineConfig,
}

impl Default for OptimizeParams {
    fn default() -> Self {
        OptimizeParams {
            timing: MemTiming::default(),
            max_rounds: 25,
            max_prefetches: 512,
            max_singles_per_round: 48,
            check_effectiveness: true,
            incremental: true,
            verify_workers: 0,
            refine: RefineConfig::on(),
        }
    }
}

/// Statistics of one optimization.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OptimizeReport {
    /// Optimize–verify rounds executed.
    pub rounds: u32,
    /// Prefetch instructions in the final program.
    pub inserted: u32,
    /// `τ_w` of the original program.
    pub wcet_before: u64,
    /// `τ_w` of the optimized program (never larger; Theorem 1).
    pub wcet_after: u64,
    /// WCET-path miss count before.
    pub misses_before: u64,
    /// WCET-path miss count after.
    pub misses_after: u64,
    /// Replacement candidates examined across rounds.
    pub candidates_seen: u64,
    /// Insertions rejected by the end-to-end verifier.
    pub rejected_by_verifier: u64,
    /// Aggregated per-phase analysis timings and work counters over every
    /// analysis the run performed (wall-clock; varies between runs).
    pub profile: AnalysisProfile,
}

impl OptimizeReport {
    /// Equality of everything the optimizer *decided* — all fields except
    /// the timing-dependent [`profile`](OptimizeReport::profile). Two runs
    /// with different `verify_workers` / `incremental` settings must agree
    /// under this comparison.
    pub fn decisions_eq(&self, other: &OptimizeReport) -> bool {
        self.rounds == other.rounds
            && self.inserted == other.inserted
            && self.wcet_before == other.wcet_before
            && self.wcet_after == other.wcet_after
            && self.misses_before == other.misses_before
            && self.misses_after == other.misses_after
            && self.candidates_seen == other.candidates_seen
            && self.rejected_by_verifier == other.rejected_by_verifier
    }
}

/// An optimized program plus the analyses proving the transformation safe.
#[derive(Clone, Debug)]
pub struct OptimizeResult {
    /// The prefetch-equivalent optimized program.
    pub program: Program,
    /// Outcome statistics.
    pub report: OptimizeReport,
    /// Analysis of the original program.
    pub analysis_before: WcetAnalysis,
    /// Analysis of the optimized program (under its relocated layout).
    pub analysis_after: WcetAnalysis,
}

/// One planned insertion: a prefetch of the block containing `target`,
/// placed immediately before `anchor` (the paper's `r_{i+1}`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct PlanEntry {
    anchor: InstrId,
    target: InstrId,
}

/// The prefetch-insertion optimizer for one cache hierarchy.
#[derive(Clone, Debug)]
pub struct Optimizer {
    hierarchy: HierarchyConfig,
    params: OptimizeParams,
}

impl Optimizer {
    /// An optimizer for a single-level cache with the given parameters.
    pub fn new(config: CacheConfig, params: OptimizeParams) -> Self {
        Self::new_hierarchy(HierarchyConfig::l1_only(config), params)
    }

    /// An optimizer for a full cache hierarchy. With an L2 level every
    /// analysis the optimizer consumes is hierarchy-aware, so the
    /// profitability test's `mcost` (Eq. 9) automatically prices an
    /// L1-miss-L2-hit at [`MemTiming::l2_hit_cycles`] instead of the DRAM
    /// miss time — prefetches that only save an L2 hit usually stop
    /// paying for themselves.
    pub fn new_hierarchy(hierarchy: HierarchyConfig, params: OptimizeParams) -> Self {
        Optimizer { hierarchy, params }
    }

    /// Optimizes `p`, returning the transformed program and its proof
    /// artefacts. The result satisfies
    /// `report.wcet_after ≤ report.wcet_before` **by construction**: every
    /// accepted insertion batch was re-verified by a full WCET analysis.
    ///
    /// Two hot-loop optimizations keep the verification cost down, and
    /// neither changes any decision:
    ///
    /// * with [`OptimizeParams::incremental`], candidate verification
    ///   re-analyses through
    ///   [`WcetAnalysis::reanalyze_after_insert`], which provably equals
    ///   the from-scratch analysis (debug builds cross-check);
    /// * with [`OptimizeParams::verify_workers`] ≠ 1, the post-batch
    ///   single-candidate loop verifies the next wave of plan entries
    ///   speculatively in parallel, then consumes the results **in plan
    ///   order**, discarding everything after the first acceptance (those
    ///   entries are re-verified against the updated program). The
    ///   accept/reject sequence, all caps, and error propagation are
    ///   exactly those of the sequential loop.
    ///
    /// # Errors
    ///
    /// Fails if the program is invalid or the analysis context budget is
    /// exceeded.
    pub fn run(&self, p: &Program) -> Result<OptimizeResult, AnalysisError> {
        let timing = self.params.timing;
        let mut prog = p.clone();
        let mut layout = Layout::of(&prog);
        let before = WcetAnalysis::analyze_hierarchy(
            &prog,
            layout.clone(),
            &self.hierarchy,
            &timing,
            self.params.refine,
            1,
        )?;
        let mut cur = before.clone();
        let mut report = OptimizeReport {
            wcet_before: before.tau_w(),
            wcet_after: before.tau_w(),
            misses_before: before.wcet_misses(),
            misses_after: before.wcet_misses(),
            ..OptimizeReport::default()
        };
        report.profile.add(before.profile());

        for _ in 0..self.params.max_rounds {
            if report.inserted >= self.params.max_prefetches {
                break;
            }
            report.rounds += 1;
            let plan = self.plan_round(&prog, &cur, &mut report);
            if plan.is_empty() {
                break;
            }

            // Batch-apply on a clone and verify end to end.
            let budget = (self.params.max_prefetches - report.inserted) as usize;
            let mut p2 = prog.clone();
            let mut l2 = layout.clone();
            let mut applied = 0u32;
            for e in plan.iter().take(budget) {
                if self.apply(&mut p2, &mut l2, *e, &mut report.profile.relocation_ns) {
                    applied += 1;
                }
            }
            if applied == 0 {
                break;
            }
            let a2 = self.verify_analysis(&cur, &p2, l2.clone())?;
            report.profile.add(a2.profile());
            if accepts(&cur, &a2) {
                prog = p2;
                layout = l2;
                cur = a2;
                report.inserted += applied;
                continue;
            }
            report.rejected_by_verifier += u64::from(applied);

            // Batch failed: verify insertions one at a time (the paper's
            // per-prefetch criterion, enforced exactly), speculating waves
            // of candidates across worker threads.
            let any = self.verify_singles(&plan, &mut prog, &mut layout, &mut cur, &mut report)?;
            if !any {
                break;
            }
        }

        report.wcet_after = cur.tau_w();
        report.misses_after = cur.wcet_misses();
        debug_assert!(report.wcet_after <= report.wcet_before);
        Ok(OptimizeResult {
            program: prog,
            report,
            analysis_before: before,
            analysis_after: cur,
        })
    }

    /// Analysis of a candidate program during verification: incremental
    /// from the current accepted analysis when enabled, from scratch
    /// otherwise.
    fn verify_analysis(
        &self,
        cur: &WcetAnalysis,
        p: &Program,
        layout: Layout,
    ) -> Result<WcetAnalysis, AnalysisError> {
        if self.params.incremental {
            cur.reanalyze_after_insert(p, layout)
        } else {
            WcetAnalysis::analyze_hierarchy(
                p,
                layout,
                &self.hierarchy,
                &self.params.timing,
                self.params.refine,
                1,
            )
        }
    }

    /// The one-at-a-time verification loop, parallelised by speculation.
    ///
    /// Waves of up to `verify_workers` plan entries are applied and
    /// analysed concurrently against the *current* program; the results
    /// are then consumed strictly in plan order. The first acceptance
    /// invalidates the remaining speculative results (they were analysed
    /// against a now-stale program), so they are discarded unconsumed —
    /// their entries re-enter the next wave. Consumed results update the
    /// counters exactly as the sequential loop would, so any worker count
    /// produces the same program, decisions, and error behaviour.
    fn verify_singles(
        &self,
        plan: &[PlanEntry],
        prog: &mut Program,
        layout: &mut Layout,
        cur: &mut WcetAnalysis,
        report: &mut OptimizeReport,
    ) -> Result<bool, AnalysisError> {
        let workers = match self.params.verify_workers {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        let mut any = false;
        let mut tried = 0u32;
        let mut idx = 0usize;
        'waves: while idx < plan.len()
            && report.inserted < self.params.max_prefetches
            && tried < self.params.max_singles_per_round
        {
            let k = workers
                .min(plan.len() - idx)
                .min((self.params.max_singles_per_round - tried) as usize)
                .max(1);
            let wave = &plan[idx..idx + k];
            if k == 1 {
                // Single-candidate fast path: apply on the live program and
                // revert on rejection instead of cloning it. Decisions,
                // counters, and error behaviour are identical to the
                // speculative path (and to the original sequential loop).
                let e = wave[0];
                tried += 1;
                let mut reloc_ns = 0u64;
                let saved_layout = layout.clone();
                let applied = self.apply(prog, layout, e, &mut reloc_ns);
                report.profile.relocation_ns += reloc_ns;
                if !applied {
                    idx += 1;
                    continue;
                }
                let revert = |prog: &mut Program, layout: &mut Layout| {
                    let newest = InstrId(prog.instr_count() as u32 - 1);
                    prog.remove_newest_instr(newest)
                        .expect("reverting the insertion just applied");
                    *layout = saved_layout;
                };
                match self.verify_analysis(cur, prog, layout.clone()) {
                    Ok(a3) => {
                        report.profile.add(a3.profile());
                        if accepts(cur, &a3) {
                            *cur = a3;
                            report.inserted += 1;
                            any = true;
                        } else {
                            report.rejected_by_verifier += 1;
                            revert(prog, layout);
                        }
                    }
                    Err(err) => {
                        revert(prog, layout);
                        return Err(err);
                    }
                }
                idx += 1;
                continue;
            }
            let specs: Vec<(Spec, u64)> = {
                std::thread::scope(|s| {
                    let handles: Vec<_> = wave
                        .iter()
                        .map(|e| {
                            let (prog, layout, cur) = (&*prog, &*layout, &*cur);
                            s.spawn(move || self.speculate(prog, layout, cur, *e))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("verification worker panicked"))
                        .collect()
                })
            };
            for (j, (spec, reloc_ns)) in specs.into_iter().enumerate() {
                if report.inserted >= self.params.max_prefetches
                    || tried >= self.params.max_singles_per_round
                {
                    break 'waves;
                }
                tried += 1;
                report.profile.relocation_ns += reloc_ns;
                match spec {
                    Spec::Skipped => {}
                    Spec::Failed(err) => return Err(err),
                    Spec::Analyzed(boxed) => {
                        let (p3, l3, a3) = *boxed;
                        report.profile.add(a3.profile());
                        if accepts(cur, &a3) {
                            *prog = p3;
                            *layout = l3;
                            *cur = a3;
                            report.inserted += 1;
                            any = true;
                            idx += j + 1;
                            continue 'waves;
                        }
                        report.rejected_by_verifier += 1;
                    }
                }
            }
            idx += k;
        }
        Ok(any)
    }

    /// Applies and analyses one plan entry against a snapshot of the
    /// current program, without committing anything.
    fn speculate(
        &self,
        prog: &Program,
        layout: &Layout,
        cur: &WcetAnalysis,
        e: PlanEntry,
    ) -> (Spec, u64) {
        let mut reloc_ns = 0u64;
        let mut p3 = prog.clone();
        let mut l3 = layout.clone();
        if !self.apply(&mut p3, &mut l3, e, &mut reloc_ns) {
            return (Spec::Skipped, reloc_ns);
        }
        match self.verify_analysis(cur, &p3, l3.clone()) {
            Ok(a3) => (Spec::Analyzed(Box::new((p3, l3, a3))), reloc_ns),
            Err(err) => (Spec::Failed(err), reloc_ns),
        }
    }

    /// Evaluates the joint improvement criterion over the current
    /// analysis, returning the accepted insertions in reverse execution
    /// order (the paper's processing order).
    fn plan_round(
        &self,
        prog: &Program,
        cur: &WcetAnalysis,
        report: &mut OptimizeReport,
    ) -> Vec<PlanEntry> {
        let timing = self.params.timing;
        let path = WcetPath::of(cur);
        let cands = candidates::scan(prog, cur);
        report.candidates_seen += cands.len() as u64;
        let mut plan: Vec<PlanEntry> = Vec::new();
        let mut seen = std::collections::HashSet::new();

        for c in cands.iter().rev() {
            // `r_i` must lie on the WCET path (Eq. 9 weighs by n^w).
            let Some(pi) = path.position(c.r_i) else {
                continue;
            };
            // `r_{i+1}`: the insertion anchor.
            let Some(&r_next) = path.refs().get(pi + 1) else {
                continue;
            };
            // `r_j`: the next use of the replaced block on the path.
            let Some(r_j) = path.next_use(cur, c.r_i, c.evicted) else {
                continue;
            };
            let pj = path.position(r_j).expect("next_use returns path refs");
            // No gain if `r_j` already always hits, and Eq. 9 forbids
            // prefetching for a prefetch.
            if !cur.classification(r_j).counts_as_miss() {
                continue;
            }
            let rj_instr = cur.acfg().reference(r_j).instr;
            if prog.instr(rj_instr).kind.is_prefetch() {
                continue;
            }
            // Effectiveness (Definition 10): Λ ≤ t_w(r_{i+1}, r_{j−1}).
            if pj == 0 || pj <= pi + 1 {
                continue;
            }
            let window = path.span_cycles(pi + 1, pj - 1);
            if self.params.check_effectiveness && timing.prefetch_latency > window {
                continue;
            }
            // Profit (Eqs. 6, 7, 9): mcost − pcost > 0. The prefetch's own
            // fetch is estimated at hit cost (it lands beside code that is
            // being fetched anyway); the end-to-end verifier catches the
            // rare cases where the estimate is optimistic.
            let mcost = cur.t_w(r_j) * cur.n_w(r_j);
            let pcost = timing.hit_cycles * cur.n_w(r_next) + timing.hit_cycles * cur.n_w(r_j);
            if mcost <= pcost {
                continue;
            }
            let anchor = cur.acfg().reference(r_next).instr;
            let entry = PlanEntry {
                anchor,
                target: rj_instr,
            };
            if seen.insert(entry) {
                plan.push(entry);
            }
        }
        plan
    }

    /// Inserts a prefetch immediately before `anchor`, relocating with the
    /// suffix anchored (paper `relocate_upwards`) and charging the
    /// relocation time to `reloc_ns`. Returns false for redundant
    /// insertions (an equivalent prefetch already sits there, or the
    /// target block is the anchor's own).
    fn apply(
        &self,
        prog: &mut Program,
        layout: &mut Layout,
        e: PlanEntry,
        reloc_ns: &mut u64,
    ) -> bool {
        let bytes = self.hierarchy.l1().block_bytes();
        let tb = layout.block_of(e.target, bytes);
        if tb == layout.block_of(e.anchor, bytes) {
            return false;
        }
        let bb = prog.block_of(e.anchor);
        let pos = prog.pos_in_block(e.anchor);
        // Redundancy window: the two instructions preceding the anchor.
        let instrs = prog.block(bb).instrs();
        for &before in &instrs[pos.saturating_sub(2)..pos] {
            if let InstrKind::Prefetch { target } = prog.instr(before).kind {
                if layout.block_of(target, bytes) == tb {
                    return false;
                }
            }
        }
        let anchor_addr = layout.addr(e.anchor);
        let t0 = std::time::Instant::now();
        prog.insert_instr(bb, pos, InstrKind::Prefetch { target: e.target })
            .expect("anchor block exists");
        *layout = Layout::anchored(prog, e.anchor, anchor_addr);
        *reloc_ns += t0.elapsed().as_nanos() as u64;
        true
    }
}

/// Outcome of one speculative single-candidate verification.
enum Spec {
    /// The insertion was redundant (`apply` returned false).
    Skipped,
    /// Applied and analysed; acceptance is decided by the consumer.
    /// Boxed: a candidate program + analysis dwarfs the other variants.
    Analyzed(Box<(Program, Layout, WcetAnalysis)>),
    /// The analysis errored; propagated only if consumed in plan order.
    Failed(AnalysisError),
}

/// Acceptance: `τ_w` must not grow and the WCET-path misses must shrink
/// (or `τ_w` strictly improves) — Problem 1's constraint and objective.
fn accepts(cur: &WcetAnalysis, new: &WcetAnalysis) -> bool {
    new.tau_w() <= cur.tau_w()
        && (new.wcet_misses() < cur.wcet_misses() || new.tau_w() < cur.tau_w())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_isa::shape::Shape;

    fn optimize(shape: Shape, config: CacheConfig) -> OptimizeResult {
        let p = shape.compile("t");
        Optimizer::new(config, OptimizeParams::default())
            .run(&p)
            .unwrap()
    }

    #[test]
    fn roomy_cache_needs_no_prefetching() {
        let r = optimize(Shape::code(16), CacheConfig::new(4, 32, 8192).unwrap());
        assert_eq!(r.report.inserted, 0);
        assert_eq!(r.report.wcet_after, r.report.wcet_before);
    }

    /// A compress-like skeleton in the paper's 1–10 % miss regime: an
    /// outer loop whose branchy body slightly exceeds the cache.
    fn compress_mini() -> Shape {
        Shape::seq([
            Shape::code(30),
            Shape::loop_(
                20,
                Shape::seq([
                    Shape::code(10),
                    Shape::if_else(2, Shape::code(16), Shape::code(8)),
                    Shape::if_then(2, Shape::code(12)),
                ]),
            ),
            Shape::code(14),
        ])
    }

    #[test]
    fn conflicting_loop_gets_prefetches_and_a_lower_wcet() {
        let r = optimize(compress_mini(), CacheConfig::new(2, 16, 128).unwrap());
        assert!(r.report.inserted > 0, "expected insertions: {:?}", r.report);
        assert!(
            r.report.wcet_after < r.report.wcet_before,
            "WCET should improve: {:?}",
            r.report
        );
        assert!(r.report.misses_after < r.report.misses_before);
        assert_eq!(r.program.prefetch_count() as u32, r.report.inserted);
    }

    #[test]
    fn wcet_never_increases_on_any_suite_like_shape() {
        let shapes = [
            Shape::loop_(10, Shape::if_else(2, Shape::code(30), Shape::code(10))),
            Shape::seq([
                Shape::code(20),
                Shape::loop_(8, Shape::code(50)),
                Shape::code(10),
            ]),
            Shape::loop_(5, Shape::loop_(6, Shape::code(25))),
        ];
        for (i, s) in shapes.into_iter().enumerate() {
            let r = optimize(s, CacheConfig::new(2, 16, 128).unwrap());
            assert!(
                r.report.wcet_after <= r.report.wcet_before,
                "shape {i} violated Theorem 1: {:?}",
                r.report
            );
        }
    }

    #[test]
    fn optimized_program_still_validates() {
        let r = optimize(compress_mini(), CacheConfig::new(2, 16, 128).unwrap());
        assert!(r.report.inserted > 0);
        assert!(r.program.validate().is_ok());
    }

    #[test]
    fn prefetch_cap_is_respected() {
        let p = compress_mini().compile("cap");
        let params = OptimizeParams {
            max_prefetches: 3,
            ..OptimizeParams::default()
        };
        let r = Optimizer::new(CacheConfig::new(2, 16, 128).unwrap(), params)
            .run(&p)
            .unwrap();
        assert!(r.report.inserted <= 3);
        assert!(r.report.inserted > 0, "cap should not prevent all work");
    }

    #[test]
    fn report_counts_are_consistent() {
        let r = optimize(compress_mini(), CacheConfig::new(2, 16, 128).unwrap());
        assert_eq!(r.report.misses_before, r.analysis_before.wcet_misses());
        assert_eq!(r.report.misses_after, r.analysis_after.wcet_misses());
        assert_eq!(r.report.wcet_before, r.analysis_before.tau_w());
        assert_eq!(r.report.wcet_after, r.analysis_after.tau_w());
    }

    fn run_with(shape: &Shape, incremental: bool, verify_workers: usize) -> OptimizeResult {
        let p = shape.clone().compile("det");
        let params = OptimizeParams {
            incremental,
            verify_workers,
            ..OptimizeParams::default()
        };
        Optimizer::new(CacheConfig::new(2, 16, 128).unwrap(), params)
            .run(&p)
            .unwrap()
    }

    #[test]
    fn parallel_verification_is_byte_identical_to_sequential() {
        for shape in [
            compress_mini(),
            Shape::loop_(10, Shape::if_else(2, Shape::code(30), Shape::code(10))),
        ] {
            let seq = run_with(&shape, true, 1);
            for workers in [0, 2, 4, 7] {
                let par = run_with(&shape, true, workers);
                assert_eq!(
                    par.program, seq.program,
                    "workers={workers} produced a different program"
                );
                assert!(
                    par.report.decisions_eq(&seq.report),
                    "workers={workers}: {:?} vs {:?}",
                    par.report,
                    seq.report
                );
            }
        }
    }

    #[test]
    fn incremental_analysis_changes_no_decision() {
        let shape = compress_mini();
        let inc = run_with(&shape, true, 1);
        let full = run_with(&shape, false, 1);
        assert_eq!(inc.program, full.program);
        assert!(inc.report.decisions_eq(&full.report));
        assert!(inc.report.profile.incremental_analyses > 0);
        assert_eq!(full.report.profile.incremental_analyses, 0);
    }

    #[test]
    fn l1_only_hierarchy_optimizer_matches_single_level() {
        let p = compress_mini().compile("h");
        let config = CacheConfig::new(2, 16, 128).unwrap();
        let single = Optimizer::new(config, OptimizeParams::default())
            .run(&p)
            .unwrap();
        let hier =
            Optimizer::new_hierarchy(HierarchyConfig::l1_only(config), OptimizeParams::default())
                .run(&p)
                .unwrap();
        assert_eq!(single.program, hier.program);
        assert!(single.report.decisions_eq(&hier.report));
    }

    #[test]
    fn l2_absorbing_misses_suppresses_unprofitable_prefetches() {
        let p = compress_mini().compile("h2");
        let l1 = CacheConfig::new(2, 16, 128).unwrap();
        let l2 = CacheConfig::new(4, 16, 4096).unwrap();
        let single = Optimizer::new(l1, OptimizeParams::default())
            .run(&p)
            .unwrap();
        assert!(single.report.inserted > 0);
        // A large L2 at 2-cycle service time makes the saved miss worth
        // about as much as the prefetch's own cost (Eq. 9's mcost uses
        // t_w = l2_hit_cycles for L1-miss-L2-hit references), so the
        // hierarchy-aware optimizer inserts strictly less.
        let params = OptimizeParams {
            timing: MemTiming::default().with_l2_hit(2),
            ..OptimizeParams::default()
        };
        let hier = Optimizer::new_hierarchy(HierarchyConfig::two_level(l1, l2).unwrap(), params)
            .run(&p)
            .unwrap();
        assert!(
            hier.report.inserted < single.report.inserted,
            "L2 should suppress insertions: {} vs {}",
            hier.report.inserted,
            single.report.inserted
        );
        // Theorem 1 holds under the hierarchy too.
        assert!(hier.report.wcet_after <= hier.report.wcet_before);
        assert!(crate::verify::check_hierarchy(
            &p,
            &hier.program,
            hier.analysis_after.layout().clone(),
            &HierarchyConfig::two_level(l1, l2).unwrap(),
            &params.timing,
        )
        .unwrap()
        .holds());
    }

    #[test]
    fn profile_accounts_for_every_analysis() {
        let r = optimize(compress_mini(), CacheConfig::new(2, 16, 128).unwrap());
        let prof = r.report.profile;
        // The initial analysis plus at least one per round.
        assert!(prof.full_analyses + prof.incremental_analyses > u64::from(r.report.rounds));
        assert!(prof.nodes_reanalyzed <= prof.nodes_total);
        assert!(prof.fixpoint_evals > 0);
    }
}
