//! The reverse analysis: detecting prefetch opportunities (Algorithm 1).
//!
//! The paper's optimizer visits references in **reverse execution order**
//! (the `ACFG*`), starting from an all-invalid state at the sink, and
//! applies the cache update function to the reversed reference string.
//! The resulting state at each point holds the blocks whose next *forward*
//! use is nearest — a near-future-reuse window. When visiting `r_i`
//! "replaces" a block `s'` in this reverse state (Property 3 read
//! backwards), block `s'` is needed soon after `r_i` but will not survive
//! demand fetching — whether because it gets evicted (conflict miss) or
//! was never loaded (cold miss). That is precisely a prefetch opportunity:
//! insert `π_{s'}` at `(r_i, r_{i+1})` and the fetch latency overlaps the
//! intervening work.
//!
//! At reverse-merge points (forward branch points) the state of the
//! outgoing edge on the WCET path wins, mirroring the `J_SE` join
//! (Algorithm 2).

use rtpf_cache::ConcreteState;
use rtpf_isa::{InstrKind, MemBlockId, Program};
use rtpf_wcet::{NodeId, RefId, WcetAnalysis};

/// A detected opportunity: the near-future block `evicted` conflicts at
/// `r_i` and deserves a prefetch at `(r_i, r_{i+1})`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Candidate {
    /// The reference whose (reverse) update displaces the block (the
    /// paper's `r_i`; the prefetch is inserted at `(r_i, r_{i+1})`).
    pub r_i: RefId,
    /// The displaced near-future block (the paper's `s'`).
    pub evicted: MemBlockId,
}

/// How reverse-merge states are joined.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum JoinPolicy {
    /// The paper's `J_SE`: the successor on the WCET path wins.
    #[default]
    WcetPath,
    /// Conventional deterministic choice (first successor), ignoring the
    /// WCET path — the `ablation_join` benchmark's strawman.
    FirstSucc,
}

/// Runs the reverse sweep and returns every opportunity, in forward
/// execution (topological) order. Uses the paper's `J_SE` join.
pub fn scan(p: &Program, a: &WcetAnalysis) -> Vec<Candidate> {
    scan_with_join(p, a, JoinPolicy::WcetPath)
}

/// [`scan`] with an explicit join policy (for ablation studies).
pub fn scan_with_join(p: &Program, a: &WcetAnalysis, policy: JoinPolicy) -> Vec<Candidate> {
    let vivu = a.vivu();
    let acfg = a.acfg();
    let config = a.config();
    let block_bytes = config.block_bytes();
    // Reverse out-state per node: the state *before* the node's first
    // reference, built by walking the node's references backwards.
    let mut rev_out: Vec<Option<ConcreteState>> = vec![None; vivu.len()];
    let mut found = Vec::new();

    for &n in vivu.topo().iter().rev() {
        // Reverse J_SE: prefer the forward successor on the WCET path.
        let succs = vivu.succs(n);
        let preferred = match policy {
            JoinPolicy::WcetPath => succs.iter().find(|&&s| a.node_on_wcet_path(s)),
            JoinPolicy::FirstSucc => None,
        };
        let chosen: Option<&ConcreteState> = preferred
            .or_else(|| succs.first())
            .and_then(|&s| rev_out[s.index()].as_ref());
        let mut state = match chosen {
            Some(s) => s.clone(),
            None => ConcreteState::new(config), // the sink's ĉ_I
        };

        for &r in acfg.refs_of_node(n).iter().rev() {
            let reference = acfg.reference(r);
            // A prefetch instruction announces a future use of its target.
            if let InstrKind::Prefetch { target } = p.instr(reference.instr).kind {
                let tb = a.layout().block_of(target, block_bytes);
                state.access(tb);
            }
            let mb = a.mem_block(r);
            if let Some(evicted) = state.would_evict(mb) {
                found.push(Candidate { r_i: r, evicted });
            }
            state.access(mb);
        }
        rev_out[n.index()] = Some(state);
    }
    found.reverse();
    found
}

/// Convenience: the VIVU node of a candidate's `r_i`.
pub fn node_of(a: &WcetAnalysis, c: &Candidate) -> NodeId {
    a.acfg().reference(c.r_i).node
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_cache::{CacheConfig, MemTiming};
    use rtpf_isa::shape::Shape;

    fn analyze(shape: Shape, config: CacheConfig) -> (Program, WcetAnalysis) {
        let p = shape.compile("t");
        let a = WcetAnalysis::analyze(&p, &config, &MemTiming::default()).unwrap();
        (p, a)
    }

    #[test]
    fn no_opportunities_in_a_roomy_cache() {
        let (p, a) = analyze(Shape::code(16), CacheConfig::new(4, 16, 1024).unwrap());
        assert!(scan(&p, &a).is_empty());
    }

    #[test]
    fn sequential_code_beyond_capacity_offers_streaming_prefetches() {
        // 64 instrs = 256 B of straight-line code through a 32 B cache:
        // cold misses downstream are conflict points in the reverse state.
        let (p, a) = analyze(Shape::code(64), CacheConfig::new(1, 16, 32).unwrap());
        let c = scan(&p, &a);
        assert!(!c.is_empty());
        for cand in &c {
            assert_ne!(a.mem_block(cand.r_i), cand.evicted);
        }
    }

    #[test]
    fn displaced_block_is_used_downstream() {
        // The reverse state only holds future-used blocks, so every
        // candidate's block must be referenced after r_i in the ACFG.
        let (_, a) = analyze(Shape::code(64), CacheConfig::new(1, 16, 32).unwrap());
        let c = scan(&Shape::code(64).compile("t"), &a);
        let pos: std::collections::HashMap<RefId, usize> = a
            .acfg()
            .topo()
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i))
            .collect();
        for cand in &c {
            let after_use = a
                .acfg()
                .refs()
                .iter()
                .any(|r| pos[&r.id] > pos[&cand.r_i] && a.mem_block(r.id) == cand.evicted);
            assert!(
                after_use,
                "candidate block {} has no future use",
                cand.evicted
            );
        }
    }

    #[test]
    fn thrashing_loop_reports_opportunities() {
        let (p, a) = analyze(
            Shape::loop_(10, Shape::code(40)),
            CacheConfig::new(1, 16, 64).unwrap(),
        );
        let c = scan(&p, &a);
        assert!(c.len() > 4);
    }

    /// Figure 2: at a conditional join the `J_SE` function propagates the
    /// state of the entering edge on the WCET path, not the conventional
    /// intersection.
    #[test]
    fn figure2_join() {
        use crate::candidates::JoinPolicy;
        // A diamond whose heavy arm (on the WCET path) touches different
        // blocks than the light arm, followed by reuse of early code.
        let shape = Shape::seq([
            Shape::code(8),
            Shape::loop_(
                6,
                Shape::seq([
                    Shape::if_else(1, Shape::code(24), Shape::code(4)),
                    Shape::code(6),
                ]),
            ),
        ]);
        let (p, a) = analyze(shape, CacheConfig::new(1, 16, 128).unwrap());
        let jse = scan_with_join(&p, &a, JoinPolicy::WcetPath);
        // With J_SE, states at the loop-body join reflect the heavy arm —
        // so every candidate's r_i with a choice lies on the WCET path.
        let on_path = jse.iter().filter(|c| a.on_wcet_path(c.r_i)).count();
        assert!(
            on_path * 2 >= jse.len(),
            "J_SE should keep most detections on the WCET path: {on_path}/{}",
            jse.len()
        );
        // The policy is exercised (both run without error; results may or
        // may not coincide depending on the layout).
        let first = scan_with_join(&p, &a, JoinPolicy::FirstSucc);
        assert!(!first.is_empty() || jse.is_empty());
    }

    #[test]
    fn candidates_are_in_topological_order() {
        let (p, a) = analyze(Shape::code(64), CacheConfig::new(1, 16, 32).unwrap());
        let c = scan(&p, &a);
        let pos: std::collections::HashMap<RefId, usize> = a
            .acfg()
            .topo()
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i))
            .collect();
        for w in c.windows(2) {
            assert!(pos[&w[0].r_i] <= pos[&w[1].r_i]);
        }
    }
}
