//! WCET-safe software prefetch insertion for unlocked instruction caches —
//! the primary contribution of *"Reconciling real-time guarantees and
//! energy efficiency through unlocked-cache prefetching"* (Wuerges, de
//! Oliveira, dos Santos — DAC 2013).
//!
//! # The technique
//!
//! Starting from a program whose WCET was bounded by classical analysis
//! (`rtpf-wcet`), the optimizer walks the acyclic reference graph in
//! **reverse execution order**, detecting cache replacements (the paper's
//! Property 3). For a replacement of block `s'` at reference `r_i` whose
//! next use is `r_j`, it considers inserting a software prefetch `π_s'` at
//! program point `(r_i, r_{i+1})` and accepts when the **joint improvement
//! criterion** (Eq. 9) holds:
//!
//! * **effective** — the prefetch latency `Λ` fits in the worst-case time
//!   between `r_{i+1}` and `r_{j−1}` (Definition 10), so the block arrives
//!   before its use on the WCET path;
//! * **profitable** — the removed miss is worth more than the prefetch
//!   instruction's own fetch plus the now-hit access
//!   (`mcost − pcost > 0`, Eqs. 6–7);
//! * **relocation-safe** — shifting the upstream code by one instruction
//!   slot does not increase the WCET (`rcost ≤ 0`, Eq. 8 / Lemma 2).
//!
//! The relocation model anchors the already-analysed suffix: code before
//! the insertion point shifts down one slot ([`rtpf_isa::Layout::anchored`]).
//!
//! # Faithfulness and the verification loop
//!
//! The paper evaluates `rcost` incrementally during the reverse pass; this
//! implementation instead *verifies each accepted batch end-to-end*: after
//! inserting a round of prefetches it re-runs the full WCET analysis and
//! rolls the round back (falling back to one-at-a-time insertion) if
//! `τ_w` increased or the WCET-path misses did not drop. The accepted
//! transformation therefore satisfies Theorem 1 **by construction**, not
//! just by argument — [`verify::check`] re-proves it for any pair of
//! programs. Iteration continues while the joint criterion finds work,
//! matching the paper's iterative-improvement design (§4).
//!
//! # Example
//!
//! ```
//! use rtpf_cache::CacheConfig;
//! use rtpf_core::{OptimizeParams, Optimizer};
//! use rtpf_isa::shape::Shape;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A branchy loop slightly exceeding the cache: prime prefetch territory.
//! let p = Shape::seq([
//!     Shape::code(30),
//!     Shape::loop_(20, Shape::seq([
//!         Shape::code(10),
//!         Shape::if_else(2, Shape::code(16), Shape::code(8)),
//!         Shape::if_then(2, Shape::code(12)),
//!     ])),
//!     Shape::code(14),
//! ]).compile("compress-mini");
//! let config = CacheConfig::new(2, 16, 128)?;
//! let result = Optimizer::new(config, OptimizeParams::default()).run(&p)?;
//! assert!(result.report.inserted > 0);
//! assert!(result.report.wcet_after < result.report.wcet_before);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod candidates;
pub mod optimizer;
pub mod path;
pub mod verify;

pub use candidates::{Candidate, JoinPolicy};
pub use optimizer::{OptimizeParams, OptimizeReport, OptimizeResult, Optimizer};
pub use path::WcetPath;
pub use verify::{check, check_hierarchy, prefetch_equivalent, TheoremReport};
