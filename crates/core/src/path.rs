//! The WCET path as a linear reference sequence with prefix sums.
//!
//! The IPET solution concentrates the worst case on a single source→sink
//! path through the VIVU graph; flattening its references gives the
//! sequence the joint improvement criterion reasons over: `r_{i+1}`
//! lookup, next-use search for a replaced block, and the effectiveness
//! window `t_w(r_{i+1}, r_{j−1})` (Eq. 5) as a prefix-sum difference.

use rtpf_isa::MemBlockId;
use rtpf_wcet::{RefId, WcetAnalysis};

/// The WCET path flattened to references, with `t_w` prefix sums.
#[derive(Clone, Debug)]
pub struct WcetPath {
    refs: Vec<RefId>,
    /// Position of each reference on the path (`u32::MAX` = off-path).
    pos: Vec<u32>,
    /// `prefix[i]` = Σ `t_w(refs[0..i])` (per execution, unweighted).
    prefix: Vec<u64>,
}

impl WcetPath {
    /// Extracts the WCET path of an analysis.
    pub fn of(a: &WcetAnalysis) -> Self {
        let mut refs: Vec<RefId> = Vec::new();
        for &n in a.vivu().topo() {
            if a.node_on_wcet_path(n) {
                refs.extend_from_slice(a.acfg().refs_of_node(n));
            }
        }
        let mut pos = vec![u32::MAX; a.acfg().len()];
        for (i, &r) in refs.iter().enumerate() {
            pos[r.index()] = i as u32;
        }
        let mut prefix = Vec::with_capacity(refs.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for &r in &refs {
            acc += a.t_w(r);
            prefix.push(acc);
        }
        WcetPath { refs, pos, prefix }
    }

    /// References on the path, in execution order.
    #[inline]
    pub fn refs(&self) -> &[RefId] {
        &self.refs
    }

    /// Position of `r` on the path, if it lies on it.
    pub fn position(&self, r: RefId) -> Option<usize> {
        match self.pos[r.index()] {
            u32::MAX => None,
            p => Some(p as usize),
        }
    }

    /// The reference following `r` on the path.
    pub fn next(&self, r: RefId) -> Option<RefId> {
        let p = self.position(r)?;
        self.refs.get(p + 1).copied()
    }

    /// The first path reference after `from` (exclusive) whose fetched
    /// block is `block` — the paper's `r_j` for a replacement of `block`.
    pub fn next_use(&self, a: &WcetAnalysis, from: RefId, block: MemBlockId) -> Option<RefId> {
        let p = self.position(from)?;
        self.refs[p + 1..]
            .iter()
            .copied()
            .find(|&r| a.mem_block(r) == block)
    }

    /// Worst-case time spent on path positions `[from, to]` inclusive, per
    /// single traversal (Eq. 5's `t_w(r_{i+1}, r_{j−1})` when called with
    /// the neighbours of an insertion point and use site).
    ///
    /// Returns 0 when the interval is empty (`from > to`).
    pub fn span_cycles(&self, from: usize, to: usize) -> u64 {
        if from > to || from >= self.refs.len() {
            return 0;
        }
        let to = to.min(self.refs.len() - 1);
        self.prefix[to + 1] - self.prefix[from]
    }

    /// Number of references on the path.
    #[inline]
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the path is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpf_cache::{CacheConfig, MemTiming};
    use rtpf_isa::shape::Shape;

    fn analyze(shape: Shape) -> WcetAnalysis {
        let p = shape.compile("t");
        WcetAnalysis::analyze(
            &p,
            &CacheConfig::new(2, 16, 256).unwrap(),
            &MemTiming::default(),
        )
        .unwrap()
    }

    #[test]
    fn straight_line_path_covers_everything() {
        let a = analyze(Shape::code(10));
        let path = WcetPath::of(&a);
        assert_eq!(path.len(), 10);
        for (i, &r) in path.refs().iter().enumerate() {
            assert_eq!(path.position(r), Some(i));
        }
    }

    #[test]
    fn off_path_arm_is_absent() {
        let a = analyze(Shape::if_else(1, Shape::code(20), Shape::code(3)));
        let path = WcetPath::of(&a);
        let off = a
            .acfg()
            .refs()
            .iter()
            .filter(|r| path.position(r.id).is_none())
            .count();
        assert!(off >= 3, "the light arm must be off the WCET path");
    }

    #[test]
    fn prefix_sums_match_t_w() {
        let a = analyze(Shape::code(12));
        let path = WcetPath::of(&a);
        let manual: u64 = path.refs().iter().map(|&r| a.t_w(r)).sum();
        assert_eq!(path.span_cycles(0, path.len() - 1), manual);
        // Single element.
        let r0 = path.refs()[0];
        assert_eq!(path.span_cycles(0, 0), a.t_w(r0));
        // Empty interval.
        assert_eq!(path.span_cycles(3, 2), 0);
    }

    #[test]
    fn next_use_finds_block_reuse_across_loop_instances() {
        // Loop body references the same blocks in first and rest contexts.
        let a = analyze(Shape::loop_(5, Shape::code(6)));
        let path = WcetPath::of(&a);
        let first = path.refs()[0];
        let block = a.mem_block(first);
        // The entry code and the loop share early blocks; next_use must
        // find a later reference or none, never panic.
        let _ = path.next_use(&a, first, block);
        // Next of the last ref is None.
        let last = *path.refs().last().unwrap();
        assert!(path.next(last).is_none());
    }
}
