//! Theorem 1 verification and prefetch equivalence.
//!
//! Theorem 1 (Supplement S.2): Algorithm 3 produces a program `p' ≡ p`
//! with `τ_w(p') ≤ τ_w(p)` when memory operations stay in program order.
//! [`check`] re-proves both halves for any concrete pair of programs by
//! re-running the full WCET analysis — the experiment harness asserts it
//! over all 2664 use cases.

use rtpf_cache::{CacheConfig, HierarchyConfig, MemTiming};
use rtpf_isa::{InstrKind, Layout, Program};
use rtpf_wcet::{AnalysisError, WcetAnalysis};

/// Result of verifying Theorem 1 on a program pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TheoremReport {
    /// `τ_w` of the original program.
    pub tau_before: u64,
    /// `τ_w` of the transformed program.
    pub tau_after: u64,
    /// Whether the programs are prefetch-equivalent (Definition 5).
    pub equivalent: bool,
    /// Whether `τ_w(p') ≤ τ_w(p)`.
    pub wcet_preserved: bool,
}

impl TheoremReport {
    /// Whether both halves of Theorem 1 hold.
    pub fn holds(&self) -> bool {
        self.equivalent && self.wcet_preserved
    }
}

/// Definition 5: `p ≡ p'` iff the programs are indistinguishable except
/// for prefetch instructions — same non-prefetch instruction sequence per
/// basic block, same CFG, same loop bounds.
pub fn prefetch_equivalent(p: &Program, q: &Program) -> bool {
    if p.block_count() != q.block_count() || p.entry() != q.entry() {
        return false;
    }
    for b in p.block_ids() {
        // CFG must match.
        let ps: Vec<_> = p.succs(b).iter().map(|&(s, _)| s).collect();
        let qs: Vec<_> = q.succs(b).iter().map(|&(s, _)| s).collect();
        if ps != qs || p.loop_bound(b) != q.loop_bound(b) {
            return false;
        }
        // Non-prefetch payloads must match in order.
        let strip = |prog: &Program, bb| {
            prog.block(bb)
                .instrs()
                .iter()
                .map(|&i| prog.instr(i).kind)
                .filter(|k| !k.is_prefetch())
                .collect::<Vec<InstrKind>>()
        };
        if strip(p, b) != strip(q, b) {
            return false;
        }
    }
    true
}

/// Re-proves Theorem 1 for the pair `(original, optimized)` by full
/// re-analysis under each program's own layout.
///
/// # Errors
///
/// Fails if either program cannot be analysed.
pub fn check(
    original: &Program,
    optimized: &Program,
    optimized_layout: Layout,
    config: &CacheConfig,
    timing: &MemTiming,
) -> Result<TheoremReport, AnalysisError> {
    check_hierarchy(
        original,
        optimized,
        optimized_layout,
        &HierarchyConfig::l1_only(*config),
        timing,
    )
}

/// [`check`] over a full cache hierarchy: both re-analyses run
/// hierarchy-aware, so `τ_w` prices L1-miss-L2-hits at the L2 service
/// time on both sides of the comparison.
///
/// # Errors
///
/// Fails if either program cannot be analysed.
pub fn check_hierarchy(
    original: &Program,
    optimized: &Program,
    optimized_layout: Layout,
    hierarchy: &HierarchyConfig,
    timing: &MemTiming,
) -> Result<TheoremReport, AnalysisError> {
    let refine = rtpf_cache::RefineConfig::default();
    let a = WcetAnalysis::analyze_hierarchy(
        original,
        Layout::of(original),
        hierarchy,
        timing,
        refine,
        1,
    )?;
    let b =
        WcetAnalysis::analyze_hierarchy(optimized, optimized_layout, hierarchy, timing, refine, 1)?;
    let tau_before = a.tau_w();
    let tau_after = b.tau_w();
    Ok(TheoremReport {
        tau_before,
        tau_after,
        equivalent: prefetch_equivalent(original, optimized),
        wcet_preserved: tau_after <= tau_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{OptimizeParams, Optimizer};
    use rtpf_isa::shape::Shape;

    #[test]
    fn equivalence_tolerates_prefetches_only() {
        let p = Shape::seq([Shape::code(2), Shape::loop_(5, Shape::code(8))]).compile("e");
        let mut q = p.clone();
        let anchor = q.block(q.entry()).instrs()[0];
        q.push_instr(q.entry(), InstrKind::Prefetch { target: anchor })
            .unwrap();
        assert!(prefetch_equivalent(&p, &q));
        assert!(prefetch_equivalent(&q, &p));
        assert!(prefetch_equivalent(&p, &p));
    }

    #[test]
    fn equivalence_rejects_real_changes() {
        let p = Shape::code(5).compile("a");
        let q = Shape::code(6).compile("a");
        assert!(!prefetch_equivalent(&p, &q));
        let r = Shape::if_else(1, Shape::code(2), Shape::code(2)).compile("a");
        assert!(!prefetch_equivalent(&p, &r));
    }

    #[test]
    fn equivalence_rejects_changed_loop_bounds() {
        let p = Shape::loop_(5, Shape::code(4)).compile("a");
        let q = Shape::loop_(6, Shape::code(4)).compile("a");
        assert!(!prefetch_equivalent(&p, &q));
    }

    #[test]
    fn theorem_holds_on_an_optimized_program() {
        let p = Shape::seq([
            Shape::code(30),
            Shape::loop_(
                20,
                Shape::seq([
                    Shape::code(10),
                    Shape::if_else(2, Shape::code(16), Shape::code(8)),
                    Shape::if_then(2, Shape::code(12)),
                ]),
            ),
            Shape::code(14),
        ])
        .compile("t");
        let config = CacheConfig::new(2, 16, 128).unwrap();
        let r = Optimizer::new(config, OptimizeParams::default())
            .run(&p)
            .unwrap();
        let report = check(
            &p,
            &r.program,
            r.analysis_after.layout().clone(),
            &config,
            &MemTiming::default(),
        )
        .unwrap();
        assert!(
            r.report.inserted > 0,
            "the scenario must exercise insertion"
        );
        assert!(report.holds(), "{report:?}");
        assert!(report.tau_after <= report.tau_before);
    }
}
