//! Problem and solution containers shared by the LP and ILP solvers.

use std::fmt;

/// Comparison operator of a linear constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

/// One constraint row: sparse coefficients, comparison, right-hand side.
pub type Row = (Vec<(usize, f64)>, Cmp, f64);

/// A maximization linear program over non-negative variables.
///
/// `maximize c·x  subject to  A x (≤ | = | ≥) b,  x ≥ 0`.
#[derive(Clone, Debug)]
pub struct LinearProgram {
    n_vars: usize,
    objective: Vec<f64>,
    rows: Vec<Row>,
}

impl LinearProgram {
    /// A program with `n_vars` non-negative variables and a zero objective.
    pub fn new(n_vars: usize) -> Self {
        LinearProgram {
            n_vars,
            objective: vec![0.0; n_vars],
            rows: Vec::new(),
        }
    }

    /// Sets the objective coefficients (maximization).
    ///
    /// # Panics
    ///
    /// Panics if `c.len()` differs from the variable count.
    pub fn set_objective(&mut self, c: &[f64]) {
        assert_eq!(c.len(), self.n_vars, "objective length mismatch");
        self.objective.copy_from_slice(c);
    }

    /// Sets a single objective coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective_coeff(&mut self, var: usize, c: f64) {
        self.objective[var] = c;
    }

    /// Adds the constraint `Σ coeffs ⋈ rhs` (sparse row; duplicate column
    /// entries are summed).
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    pub fn add_constraint(&mut self, coeffs: &[(usize, f64)], cmp: Cmp, rhs: f64) {
        let mut row: Vec<(usize, f64)> = Vec::with_capacity(coeffs.len());
        for &(j, a) in coeffs {
            assert!(j < self.n_vars, "column {j} out of range");
            match row.iter_mut().find(|(jj, _)| *jj == j) {
                Some((_, aa)) => *aa += a,
                None => row.push((j, a)),
            }
        }
        self.rows.push((row, cmp, rhs));
    }

    /// Number of variables.
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraints.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Objective coefficients.
    #[inline]
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Constraint rows.
    #[inline]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Evaluates the objective at `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Whether `x` satisfies every constraint within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.n_vars || x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.rows.iter().all(|(row, cmp, b)| {
            let lhs: f64 = row.iter().map(|&(j, a)| a * x[j]).sum();
            match cmp {
                Cmp::Le => lhs <= b + tol,
                Cmp::Eq => (lhs - b).abs() <= tol,
                Cmp::Ge => lhs >= b - tol,
            }
        })
    }
}

/// An optimal LP/ILP solution.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Variable assignment.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
}

/// Outcome of solving a [`LinearProgram`].
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// An optimum was found.
    Optimal(Solution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
}

impl LpOutcome {
    /// The solution, if optimal.
    pub fn optimal(self) -> Option<Solution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the outcome is [`LpOutcome::Optimal`].
    pub fn is_optimal(&self) -> bool {
        matches!(self, LpOutcome::Optimal(_))
    }
}

impl fmt::Display for LpOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpOutcome::Optimal(s) => write!(f, "optimal (value {})", s.value),
            LpOutcome::Infeasible => write!(f, "infeasible"),
            LpOutcome::Unbounded => write!(f, "unbounded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_columns_are_summed() {
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(&[(0, 1.0), (0, 2.0)], Cmp::Le, 6.0);
        assert_eq!(lp.rows()[0].0, vec![(0, 3.0)]);
    }

    #[test]
    fn feasibility_check() {
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Le, 3.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Ge, 1.0);
        assert!(lp.is_feasible(&[1.0, 2.0], 1e-9));
        assert!(!lp.is_feasible(&[0.5, 2.0], 1e-9)); // violates Ge
        assert!(!lp.is_feasible(&[2.0, 2.0], 1e-9)); // violates Le
        assert!(!lp.is_feasible(&[-1.0, 0.0], 1e-9)); // negative
    }

    #[test]
    fn objective_evaluation() {
        let mut lp = LinearProgram::new(3);
        lp.set_objective(&[1.0, 2.0, 3.0]);
        assert_eq!(lp.objective_value(&[1.0, 1.0, 1.0]), 6.0);
        lp.set_objective_coeff(2, 0.0);
        assert_eq!(lp.objective_value(&[1.0, 1.0, 1.0]), 3.0);
    }
}
