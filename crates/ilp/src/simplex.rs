//! Two-phase dense-tableau simplex with Bland's anti-cycling rule.
//!
//! Robust rather than fast: IPET instances are small and network-flow-like,
//! and the heavy lifting is done by the [`dag`](crate::dag) fast path. This
//! solver exists for the general formulation and as the LP relaxation
//! engine of the [`ilp`](crate::ilp) branch & bound.

use crate::problem::{Cmp, LinearProgram, LpOutcome, Solution};

const TOL: f64 = 1e-7;

/// Solves `lp` to optimality.
///
/// Returns [`LpOutcome::Infeasible`] when no point satisfies the
/// constraints and [`LpOutcome::Unbounded`] when the maximum is infinite.
pub fn solve(lp: &LinearProgram) -> LpOutcome {
    Tableau::build(lp).solve(lp)
}

/// Dense simplex tableau in standard equality form.
struct Tableau {
    /// `rows × (n_cols + 1)`; last column is the RHS.
    t: Vec<Vec<f64>>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    n_structural: usize,
    n_cols: usize,
    artificials: Vec<usize>,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        let n = lp.n_vars();
        let m = lp.n_rows();
        // Count slack and artificial columns.
        let mut n_slack = 0;
        let mut n_art = 0;
        for (_, cmp, _) in lp.rows() {
            match cmp {
                Cmp::Le => n_slack += 1,
                Cmp::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Cmp::Eq => n_art += 1,
            }
        }
        let n_cols = n + n_slack + n_art;
        let mut t = vec![vec![0.0; n_cols + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut artificials = Vec::with_capacity(n_art);
        let mut next_slack = n;
        let mut next_art = n + n_slack;
        for (i, (row, cmp, rhs)) in lp.rows().iter().enumerate() {
            let mut rhs = *rhs;
            let mut coeffs: Vec<(usize, f64)> = row.clone();
            // Normalize to a non-negative RHS.
            let flip = rhs < 0.0;
            if flip {
                rhs = -rhs;
                for (_, a) in &mut coeffs {
                    *a = -*a;
                }
            }
            let cmp = match (cmp, flip) {
                (Cmp::Le, true) => Cmp::Ge,
                (Cmp::Ge, true) => Cmp::Le,
                (c, _) => *c,
            };
            for (j, a) in coeffs {
                t[i][j] += a;
            }
            t[i][n_cols] = rhs;
            match cmp {
                Cmp::Le => {
                    t[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Cmp::Ge => {
                    t[i][next_slack] = -1.0;
                    next_slack += 1;
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    artificials.push(next_art);
                    next_art += 1;
                }
                Cmp::Eq => {
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    artificials.push(next_art);
                    next_art += 1;
                }
            }
        }
        Tableau {
            t,
            basis,
            n_structural: n,
            n_cols,
            artificials,
        }
    }

    fn solve(mut self, lp: &LinearProgram) -> LpOutcome {
        // Phase 1: minimize the sum of artificials (maximize the negation).
        if !self.artificials.is_empty() {
            let mut c1 = vec![0.0; self.n_cols];
            for &a in &self.artificials {
                c1[a] = -1.0;
            }
            match self.optimize(&c1) {
                Phase::Optimal(v) => {
                    if v < -TOL {
                        return LpOutcome::Infeasible;
                    }
                }
                Phase::Unbounded => unreachable!("phase-1 objective is bounded"),
            }
            // Pivot any artificial still in the basis out (degenerate rows).
            for i in 0..self.t.len() {
                if self.artificials.contains(&self.basis[i]) {
                    let pivot_col = (0..self.n_structural)
                        .find(|&j| self.t[i][j].abs() > TOL)
                        .or_else(|| {
                            (self.n_structural..self.n_cols).find(|j| {
                                !self.artificials.contains(j) && self.t[i][*j].abs() > TOL
                            })
                        });
                    if let Some(j) = pivot_col {
                        self.pivot(i, j);
                    }
                    // Otherwise the row is all-zero: redundant, harmless.
                }
            }
            // Freeze artificial columns at zero for phase 2.
            for row in &mut self.t {
                for &a in &self.artificials {
                    row[a] = 0.0;
                }
            }
        }

        // Phase 2: the real objective.
        let mut c2 = vec![0.0; self.n_cols];
        c2[..lp.n_vars()].copy_from_slice(lp.objective());
        match self.optimize(&c2) {
            Phase::Unbounded => LpOutcome::Unbounded,
            Phase::Optimal(value) => {
                let mut x = vec![0.0; lp.n_vars()];
                for (i, &b) in self.basis.iter().enumerate() {
                    if b < lp.n_vars() {
                        x[b] = self.t[i][self.n_cols];
                    }
                }
                LpOutcome::Optimal(Solution { x, value })
            }
        }
    }

    /// Maximizes `c · x` from the current basic feasible solution.
    fn optimize(&mut self, c: &[f64]) -> Phase {
        let m = self.t.len();
        let rhs_col = self.n_cols;
        loop {
            // Reduced costs: z_j - c_j = Σ_i c[basis_i] * t[i][j] - c[j].
            let cb: Vec<f64> = self.basis.iter().map(|&b| c[b]).collect();
            let mut entering = None;
            for (j, &cj) in c.iter().enumerate().take(self.n_cols) {
                let zj: f64 = (0..m).map(|i| cb[i] * self.t[i][j]).sum();
                // Bland's rule: first improving column.
                if zj - cj < -TOL {
                    entering = Some(j);
                    break;
                }
            }
            let Some(j) = entering else {
                let value: f64 = (0..m).map(|i| cb[i] * self.t[i][rhs_col]).sum();
                return Phase::Optimal(value);
            };
            // Ratio test, Bland tie-break on the leaving basic variable.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..m {
                let a = self.t[i][j];
                if a > TOL {
                    let ratio = self.t[i][rhs_col] / a;
                    match leave {
                        None => leave = Some((i, ratio)),
                        Some((li, lr)) => {
                            if ratio < lr - TOL
                                || ((ratio - lr).abs() <= TOL && self.basis[i] < self.basis[li])
                            {
                                leave = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((i, _)) = leave else {
                return Phase::Unbounded;
            };
            self.pivot(i, j);
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let rhs_col = self.n_cols;
        let p = self.t[row][col];
        debug_assert!(p.abs() > TOL * TOL, "pivot on (near) zero");
        for v in &mut self.t[row] {
            *v /= p;
        }
        for i in 0..self.t.len() {
            if i == row {
                continue;
            }
            let f = self.t[i][col];
            if f.abs() <= TOL * TOL {
                continue;
            }
            for j in 0..=rhs_col {
                self.t[i][j] -= f * self.t[row][j];
            }
        }
        self.basis[row] = col;
    }
}

enum Phase {
    Optimal(f64),
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, LinearProgram};

    fn assert_opt(lp: &LinearProgram, expected: f64) -> Vec<f64> {
        let sol = solve(lp).optimal().expect("should be optimal");
        assert!(
            (sol.value - expected).abs() < 1e-6,
            "value {} != expected {expected}",
            sol.value
        );
        assert!(lp.is_feasible(&sol.x, 1e-6));
        sol.x
    }

    #[test]
    fn textbook_le_problem() {
        // max 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18 → 36 at (2,6)
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[3.0, 5.0]);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(&[(1, 2.0)], Cmp::Le, 12.0);
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], Cmp::Le, 18.0);
        let x = assert_opt(&lp, 36.0);
        assert!((x[0] - 2.0).abs() < 1e-6 && (x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints_phase1() {
        // max x+y s.t. x+y = 5, x <= 3 → 5
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 5.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 3.0);
        assert_opt(&lp, 5.0);
    }

    #[test]
    fn ge_constraints() {
        // max -x (i.e. minimize x) s.t. x >= 2.5 → -2.5
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[-1.0]);
        lp.add_constraint(&[(0, 1.0)], Cmp::Ge, 2.5);
        assert_opt(&lp, -2.5);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Ge, 2.0);
        assert!(matches!(solve(&lp), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[(0, 1.0)], Cmp::Ge, 0.0);
        assert!(matches!(solve(&lp), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // max x s.t. -x >= -3 (i.e. x <= 3) → 3
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[(0, -1.0)], Cmp::Ge, -3.0);
        assert_opt(&lp, 3.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classically degenerate LP (Beale-like); Bland's rule must not cycle.
        let mut lp = LinearProgram::new(4);
        lp.set_objective(&[0.75, -150.0, 0.02, -6.0]);
        lp.add_constraint(&[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)], Cmp::Le, 0.0);
        lp.add_constraint(&[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)], Cmp::Le, 0.0);
        lp.add_constraint(&[(2, 1.0)], Cmp::Le, 1.0);
        let sol = solve(&lp).optimal().expect("optimal");
        assert!((sol.value - 0.05).abs() < 1e-6);
    }

    #[test]
    fn flow_conservation_network() {
        // A tiny IPET-like flow problem:
        // n0 = 1 (entry), n0 = n1 + n2 (split), n3 = n1 + n2 (join)
        // max 10*n1 + 3*n2 + n3  → path through n1: 10 + 1 = 11 + n0 weight.
        let mut lp = LinearProgram::new(4);
        lp.set_objective(&[1.0, 10.0, 3.0, 1.0]);
        lp.add_constraint(&[(0, 1.0)], Cmp::Eq, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, -1.0), (2, -1.0)], Cmp::Eq, 0.0);
        lp.add_constraint(&[(3, 1.0), (1, -1.0), (2, -1.0)], Cmp::Eq, 0.0);
        let x = assert_opt(&lp, 12.0);
        assert!((x[1] - 1.0).abs() < 1e-6, "heavy arm takes the flow");
    }
}
