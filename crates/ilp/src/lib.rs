//! Linear and integer programming for IPET.
//!
//! The Implicit Path Enumeration Technique (IPET, reference [11] of the
//! paper) bounds the WCET by maximizing `Σ t_bb · n_bb` subject to
//! flow-conservation and loop-bound constraints. The original toolchain
//! called an external ILP solver; this crate provides the substrate from
//! scratch:
//!
//! * [`LinearProgram`] + [`simplex::solve`] — a two-phase dense-tableau
//!   simplex solver with Bland's anti-cycling rule;
//! * [`ilp::solve`] — branch & bound on top of the LP relaxation;
//! * [`dag`] — an exact longest-path solver for the acyclic VIVU-expanded
//!   IPET instances, where the LP is equivalent to a weighted longest path
//!   (the optimizer's hot path).
//!
//! # Example
//!
//! ```
//! use rtpf_ilp::{LinearProgram, Cmp};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4, x <= 2
//! let mut lp = LinearProgram::new(2);
//! lp.set_objective(&[3.0, 2.0]);
//! lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Le, 4.0);
//! lp.add_constraint(&[(0, 1.0)], Cmp::Le, 2.0);
//! let sol = rtpf_ilp::simplex::solve(&lp).optimal().expect("feasible");
//! assert!((sol.value - 10.0).abs() < 1e-6); // x=2, y=2
//! ```

#![forbid(unsafe_code)]

pub mod dag;
pub mod ilp;
pub mod problem;
pub mod simplex;

pub use problem::{Cmp, LinearProgram, LpOutcome, Solution};
