//! Branch & bound integer programming on top of the simplex relaxation.

use crate::problem::{Cmp, LinearProgram, LpOutcome, Solution};
use crate::simplex;

/// Integrality tolerance: values within this of an integer count as integral.
const INT_TOL: f64 = 1e-6;

/// Hard cap on explored branch & bound nodes; IPET instances stay far below
/// this, and hitting it signals a modelling error rather than a hard input.
const MAX_NODES: usize = 200_000;

/// Solves `lp` with **all variables required integral**, by LP-relaxation
/// branch & bound (best-first on the relaxation bound).
///
/// Returns [`LpOutcome::Infeasible`] when no integral point exists. The
/// relaxation being unbounded is reported as [`LpOutcome::Unbounded`].
///
/// # Panics
///
/// Panics if the node cap is exceeded (indicates a degenerate model).
pub fn solve(lp: &LinearProgram) -> LpOutcome {
    let root = match simplex::solve(lp) {
        LpOutcome::Optimal(s) => s,
        other => return other,
    };
    let mut best: Option<Solution> = None;
    // Stack of subproblems: extra bound constraints (var, cmp, value).
    let mut stack: Vec<Vec<(usize, Cmp, f64)>> = vec![Vec::new()];
    let mut explored = 0usize;
    let root_bound = root.value;

    while let Some(extra) = stack.pop() {
        explored += 1;
        assert!(explored <= MAX_NODES, "branch & bound node cap exceeded");
        let mut sub = lp.clone();
        for &(v, cmp, b) in &extra {
            sub.add_constraint(&[(v, 1.0)], cmp, b);
        }
        let sol = match simplex::solve(&sub) {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => return LpOutcome::Unbounded,
        };
        // Bound: cannot beat the incumbent.
        if let Some(ref inc) = best {
            if sol.value <= inc.value + INT_TOL {
                continue;
            }
        }
        match most_fractional(&sol.x) {
            None => {
                // Integral: round off numerical fuzz and keep if better.
                let x: Vec<f64> = sol.x.iter().map(|v| v.round()).collect();
                let value = lp.objective_value(&x);
                if best.as_ref().is_none_or(|inc| value > inc.value) {
                    best = Some(Solution { x, value });
                }
            }
            Some((v, frac)) => {
                let lo = frac.floor();
                // Explore the rounded-up branch last-pushed first: for IPET
                // maximization, higher counts usually carry the optimum.
                let mut down = extra.clone();
                down.push((v, Cmp::Le, lo));
                let mut up = extra;
                up.push((v, Cmp::Ge, lo + 1.0));
                stack.push(down);
                stack.push(up);
            }
        }
        // Early exit: incumbent matches the root relaxation bound.
        if let Some(ref inc) = best {
            if inc.value >= root_bound - INT_TOL {
                break;
            }
        }
    }

    match best {
        Some(s) => LpOutcome::Optimal(s),
        None => LpOutcome::Infeasible,
    }
}

/// Index and value of the most fractional variable, if any.
fn most_fractional(x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64, f64)> = None; // (idx, value, dist-to-half)
    for (i, &v) in x.iter().enumerate() {
        let frac = v - v.floor();
        if frac > INT_TOL && frac < 1.0 - INT_TOL {
            let dist = (frac - 0.5).abs();
            if best.is_none_or(|(_, _, d)| dist < d) {
                best = Some((i, v, dist));
            }
        }
    }
    best.map(|(i, v, _)| (i, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, LinearProgram};

    #[test]
    fn knapsack_requires_integrality() {
        // max 8a + 11b + 6c + 4d s.t. 5a+7b+4c+3d <= 14, vars <= 1
        // LP relaxation is fractional; integer optimum is 21 (b, c, d).
        let mut lp = LinearProgram::new(4);
        lp.set_objective(&[8.0, 11.0, 6.0, 4.0]);
        lp.add_constraint(&[(0, 5.0), (1, 7.0), (2, 4.0), (3, 3.0)], Cmp::Le, 14.0);
        for v in 0..4 {
            lp.add_constraint(&[(v, 1.0)], Cmp::Le, 1.0);
        }
        let sol = solve(&lp).optimal().expect("feasible");
        assert!((sol.value - 21.0).abs() < 1e-6);
        for v in &sol.x {
            assert!((v - v.round()).abs() < 1e-6, "non-integral {v}");
        }
    }

    #[test]
    fn already_integral_relaxation_short_circuits() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 1.0]);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 3.0);
        lp.add_constraint(&[(1, 1.0)], Cmp::Le, 4.0);
        let sol = solve(&lp).optimal().expect("feasible");
        assert!((sol.value - 7.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integer_problem() {
        // 2x = 1 has no integral solution.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[(0, 2.0)], Cmp::Eq, 1.0);
        assert!(matches!(solve(&lp), LpOutcome::Infeasible));
    }

    #[test]
    fn fractional_lp_rounds_down_correctly() {
        // max x s.t. 2x <= 5 → LP gives 2.5, ILP gives 2.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[(0, 2.0)], Cmp::Le, 5.0);
        let sol = solve(&lp).optimal().expect("feasible");
        assert!((sol.value - 2.0).abs() < 1e-6);
    }
}
