//! Exact longest-path solver on DAGs.
//!
//! After the VIVU transformation, the IPET instance of a reducible program
//! is equivalent to a node-weighted longest path on the acyclic context
//! graph, where each node's weight is its per-execution time multiplied by
//! its context multiplicity (product of enclosing `bound` / `bound − 1`
//! factors). At a linear objective's maximum the flow concentrates on one
//! path, so the longest path equals the IPET optimum — the cross-check
//! against [`crate::ilp::solve`] is a property test in this module's suite.

use std::error::Error;
use std::fmt;

/// Error returned when the input graph is not a DAG or refers to unknown
/// nodes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DagError {
    /// An edge endpoint is out of range.
    NodeOutOfRange(usize),
    /// The graph contains a cycle.
    Cyclic,
    /// The sink is unreachable from the source.
    Unreachable,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::NodeOutOfRange(n) => write!(f, "node {n} out of range"),
            DagError::Cyclic => write!(f, "graph contains a cycle"),
            DagError::Unreachable => write!(f, "sink unreachable from source"),
        }
    }
}

impl Error for DagError {}

/// A node-weighted directed acyclic graph.
///
/// # Example
///
/// ```
/// use rtpf_ilp::dag::Dag;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 0 → {1 (heavy), 2 (light)} → 3
/// let mut dag = Dag::new(vec![1, 10, 3, 1]);
/// dag.add_edge(0, 1)?;
/// dag.add_edge(0, 2)?;
/// dag.add_edge(1, 3)?;
/// dag.add_edge(2, 3)?;
/// let best = dag.longest_path(0, 3)?;
/// assert_eq!(best.value, 12);
/// assert_eq!(best.path, vec![0, 1, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Dag {
    weights: Vec<u64>,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

/// Result of a longest-path query: total weight and the path itself
/// (source and sink included).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LongestPath {
    /// Sum of node weights along the path.
    pub value: u64,
    /// Nodes on the path, source first.
    pub path: Vec<usize>,
}

impl Dag {
    /// A DAG with `n` nodes of the given weights and no edges.
    pub fn new(weights: Vec<u64>) -> Self {
        let n = weights.len();
        Dag {
            weights,
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Adds edge `from -> to`.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::NodeOutOfRange`] for an unknown endpoint.
    pub fn add_edge(&mut self, from: usize, to: usize) -> Result<(), DagError> {
        for n in [from, to] {
            if n >= self.weights.len() {
                return Err(DagError::NodeOutOfRange(n));
            }
        }
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
            self.preds[to].push(from);
        }
        Ok(())
    }

    /// Updates the weight of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_weight(&mut self, node: usize, w: u64) {
        self.weights[node] = w;
    }

    /// Weight of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn weight(&self, node: usize) -> u64 {
        self.weights[node]
    }

    /// Successors of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn succs(&self, node: usize) -> &[usize] {
        &self.succs[node]
    }

    /// Maximum-weight path from `source` to `sink`.
    ///
    /// # Errors
    ///
    /// Fails on cyclic graphs, out-of-range endpoints, or when `sink` is
    /// unreachable from `source`.
    pub fn longest_path(&self, source: usize, sink: usize) -> Result<LongestPath, DagError> {
        let n = self.weights.len();
        for e in [source, sink] {
            if e >= n {
                return Err(DagError::NodeOutOfRange(e));
            }
        }
        let order = self.topo_order()?;
        let mut best: Vec<Option<u64>> = vec![None; n];
        let mut from: Vec<usize> = vec![usize::MAX; n];
        best[source] = Some(self.weights[source]);
        for &u in &order {
            let Some(bu) = best[u] else { continue };
            for &v in &self.succs[u] {
                let cand = bu + self.weights[v];
                if best[v].is_none_or(|bv| cand > bv) {
                    best[v] = Some(cand);
                    from[v] = u;
                }
            }
        }
        let Some(value) = best[sink] else {
            return Err(DagError::Unreachable);
        };
        let mut path = vec![sink];
        let mut cur = sink;
        while cur != source {
            cur = from[cur];
            path.push(cur);
        }
        path.reverse();
        Ok(LongestPath { value, path })
    }

    /// Kahn topological order.
    fn topo_order(&self) -> Result<Vec<usize>, DagError> {
        let n = self.weights.len();
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for &v in &self.succs[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(DagError::Cyclic)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_heavier_arm_of_a_diamond() {
        // 0 → {1 (w=10), 2 (w=3)} → 3
        let mut d = Dag::new(vec![1, 10, 3, 1]);
        d.add_edge(0, 1).unwrap();
        d.add_edge(0, 2).unwrap();
        d.add_edge(1, 3).unwrap();
        d.add_edge(2, 3).unwrap();
        let lp = d.longest_path(0, 3).unwrap();
        assert_eq!(lp.value, 12);
        assert_eq!(lp.path, vec![0, 1, 3]);
    }

    #[test]
    fn chain_sums_all_weights() {
        let mut d = Dag::new(vec![2, 3, 4]);
        d.add_edge(0, 1).unwrap();
        d.add_edge(1, 2).unwrap();
        assert_eq!(d.longest_path(0, 2).unwrap().value, 9);
    }

    #[test]
    fn cyclic_graph_rejected() {
        let mut d = Dag::new(vec![1, 1]);
        d.add_edge(0, 1).unwrap();
        d.add_edge(1, 0).unwrap();
        assert_eq!(d.longest_path(0, 1), Err(DagError::Cyclic));
    }

    #[test]
    fn unreachable_sink_rejected() {
        let d = Dag::new(vec![1, 1]);
        assert_eq!(d.longest_path(0, 1), Err(DagError::Unreachable));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = Dag::new(vec![1]);
        assert_eq!(d.add_edge(0, 5), Err(DagError::NodeOutOfRange(5)));
        assert_eq!(d.longest_path(0, 9), Err(DagError::NodeOutOfRange(9)));
    }

    #[test]
    fn matches_ilp_on_a_diamond() {
        // Cross-check the equivalence the wcet crate relies on: longest
        // path == IPET ILP on the same diamond.
        use crate::problem::{Cmp, LinearProgram};
        let weights = [5.0, 9.0, 4.0, 2.0];
        let mut lp = LinearProgram::new(4);
        lp.set_objective(&weights);
        lp.add_constraint(&[(0, 1.0)], Cmp::Eq, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, -1.0), (2, -1.0)], Cmp::Eq, 0.0);
        lp.add_constraint(&[(3, 1.0), (1, -1.0), (2, -1.0)], Cmp::Eq, 0.0);
        let ilp = crate::ilp::solve(&lp).optimal().unwrap();

        let mut d = Dag::new(vec![5, 9, 4, 2]);
        d.add_edge(0, 1).unwrap();
        d.add_edge(0, 2).unwrap();
        d.add_edge(1, 3).unwrap();
        d.add_edge(2, 3).unwrap();
        let path = d.longest_path(0, 3).unwrap();
        assert_eq!(path.value as f64, ilp.value);
    }
}
