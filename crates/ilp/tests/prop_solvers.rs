//! Property tests cross-checking the three solvers against each other
//! and against brute force on small instances.

use proptest::prelude::*;

use rtpf_ilp::dag::Dag;
use rtpf_ilp::{Cmp, LinearProgram, LpOutcome};

/// Random layered DAGs: `layers` × `width` nodes with forward edges, plus
/// a source and sink. A diagonal chain guarantees sink reachability.
fn layered_dag() -> impl Strategy<Value = (Dag, usize, usize)> {
    (2usize..5, 1usize..4).prop_flat_map(|(layers, width)| {
        let n = layers * width + 2;
        (
            prop::collection::vec(0u64..50, n),
            prop::collection::vec(any::<bool>(), (layers - 1) * width * width),
        )
            .prop_map(move |(weights, mask)| {
                let n = layers * width + 2;
                let mut dag = Dag::new(weights);
                let source = n - 2;
                let sink = n - 1;
                for j in 0..width {
                    dag.add_edge(source, j).expect("in range");
                    dag.add_edge((layers - 1) * width + j, sink)
                        .expect("in range");
                }
                let mut m = 0;
                for l in 0..layers - 1 {
                    for a in 0..width {
                        for b in 0..width {
                            let on = mask.get(m).copied().unwrap_or(false) || a == b;
                            m += 1;
                            if on {
                                dag.add_edge(l * width + a, (l + 1) * width + b)
                                    .expect("in range");
                            }
                        }
                    }
                }
                (dag, source, sink)
            })
    })
}

/// Solves the same longest-path instance as an edge-flow ILP.
fn flow_ilp_value(dag: &Dag, source: usize, sink: usize) -> u64 {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for u in 0..dag.len() {
        for &v in dag.succs(u) {
            edges.push((u, v));
        }
    }
    let mut lp = LinearProgram::new(edges.len());
    // One unit of flow enters every on-path node (sink included) exactly
    // once, so charging each edge with its head's weight counts every
    // path node except the source, which is added at the end.
    for (e, &(_, v)) in edges.iter().enumerate() {
        lp.set_objective_coeff(e, dag.weight(v) as f64);
    }
    let src_out: Vec<(usize, f64)> = edges
        .iter()
        .enumerate()
        .filter(|(_, &(u, _))| u == source)
        .map(|(e, _)| (e, 1.0))
        .collect();
    lp.add_constraint(&src_out, Cmp::Eq, 1.0);
    for v in 0..dag.len() {
        if v == source || v == sink {
            continue;
        }
        let mut row: Vec<(usize, f64)> = Vec::new();
        for (e, &(a, b)) in edges.iter().enumerate() {
            if b == v {
                row.push((e, 1.0));
            }
            if a == v {
                row.push((e, -1.0));
            }
        }
        if !row.is_empty() {
            lp.add_constraint(&row, Cmp::Eq, 0.0);
        }
    }
    match rtpf_ilp::ilp::solve(&lp) {
        LpOutcome::Optimal(s) => s.value.round() as u64 + dag.weight(source),
        other => panic!("flow must be feasible: {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn longest_path_matches_flow_ilp((dag, source, sink) in layered_dag()) {
        let lp = dag.longest_path(source, sink).expect("reachable by construction");
        // The reported path is a real path with the reported value.
        let sum: u64 = lp.path.iter().map(|&n| dag.weight(n)).sum();
        prop_assert_eq!(sum, lp.value);
        for w in lp.path.windows(2) {
            prop_assert!(dag.succs(w[0]).contains(&w[1]), "path edge missing");
        }
        // And it agrees with the independent ILP formulation.
        prop_assert_eq!(flow_ilp_value(&dag, source, sink), lp.value);
    }

    #[test]
    fn knapsack_branch_and_bound_matches_brute_force(
        pairs in prop::collection::vec((1f64..20.0, 1f64..10.0), 1..8),
        cap in 5f64..30.0,
    ) {
        let n = pairs.len();
        let mut lp = LinearProgram::new(n);
        for (i, &(v, _)) in pairs.iter().enumerate() {
            lp.set_objective_coeff(i, v);
            lp.add_constraint(&[(i, 1.0)], Cmp::Le, 1.0);
        }
        let row: Vec<(usize, f64)> = pairs.iter().enumerate().map(|(i, &(_, w))| (i, w)).collect();
        lp.add_constraint(&row, Cmp::Le, cap);
        let got = match rtpf_ilp::ilp::solve(&lp) {
            LpOutcome::Optimal(s) => s.value,
            other => panic!("knapsack must be feasible: {other}"),
        };
        let mut best = 0.0f64;
        for m in 0u32..(1 << n) {
            let (mut v, mut w) = (0.0, 0.0);
            for (i, &(vi, wi)) in pairs.iter().enumerate() {
                if m & (1 << i) != 0 {
                    v += vi;
                    w += wi;
                }
            }
            if w <= cap + 1e-9 {
                best = best.max(v);
            }
        }
        prop_assert!((got - best).abs() < 1e-5, "b&b {got} vs brute {best}");
    }

    #[test]
    fn simplex_matches_vertex_enumeration(
        c0 in 0f64..10.0, c1 in 0f64..10.0,
        b0 in 1f64..20.0, b1 in 1f64..20.0,
    ) {
        // max c·x s.t. x0 + x1 <= b0, x0 <= b1: optimum at a vertex.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[c0, c1]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Le, b0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, b1);
        let sol = rtpf_ilp::simplex::solve(&lp).optimal().expect("feasible");
        prop_assert!(lp.is_feasible(&sol.x, 1e-6));
        let candidates = [
            (0.0, 0.0),
            (b1.min(b0), 0.0),
            (0.0, b0),
            (b1.min(b0), (b0 - b1).max(0.0)),
        ];
        let best = candidates
            .iter()
            .map(|&(x, y)| c0 * x + c1 * y)
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((sol.value - best).abs() < 1e-5, "{} vs {}", sol.value, best);
    }
}
