use rtpf_engine::EngineConfig;
fn main() {
    for name in [
        "nsichneu",
        "bsort100",
        "statemate",
        "adpcm",
        "crc",
        "matmult",
        "bs",
        "ndes",
    ] {
        let b = rtpf_suite::by_name(name).unwrap();
        for (k, cfg) in [
            ("k7", EngineConfig::geometry(1, 16, 512).unwrap()),
            ("k25", EngineConfig::geometry(1, 16, 4096).unwrap()),
        ] {
            let t0 = std::time::Instant::now();
            let r = rtpf_experiments::run_unit(name, &b.program, k, cfg);
            println!(
                "{name} {k}: {:.2}s ins={} wcet_ratio={:.3}",
                t0.elapsed().as_secs_f64(),
                r.inserted,
                r.wcet_ratio()
            );
        }
    }
}
