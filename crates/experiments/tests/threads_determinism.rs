//! Thread-count determinism of the sweep artifact: the same units
//! rendered to CSV must be byte-identical whether each unit's engine
//! solves its fixpoints on one worker thread or several. This is the
//! end-to-end (engine + Figure-5 probes + CSV serialization) counterpart
//! of the `rtpf-wcet` parallel-vs-sequential property test.

use rtpf_cache::{CacheConfig, ReplacementPolicy};
use rtpf_experiments::{paper_configs_for, run_unit_with_threads, to_csv, UnitResult};

/// A smoke slice of the grid: two cheap programs across geometry extremes
/// and a mid-grid point, under every replacement policy.
fn slice(policy: ReplacementPolicy, threads: usize) -> Vec<UnitResult> {
    let configs: Vec<(String, CacheConfig)> = paper_configs_for(policy);
    let mut rows = Vec::new();
    for name in ["bs", "fft1"] {
        let b = rtpf_suite::by_name(name).expect("suite program");
        for ki in [0, 13, 35] {
            let (k, config) = &configs[ki];
            rows.push(run_unit_with_threads(name, &b.program, k, *config, threads));
        }
    }
    rows.sort_by(|a, b| (&a.program, &a.k).cmp(&(&b.program, &b.k)));
    rows
}

#[test]
fn sweep_csv_bytes_are_identical_at_any_thread_count() {
    for policy in ReplacementPolicy::ALL {
        let seq = to_csv(&slice(policy, 1));
        let par = to_csv(&slice(policy, 3));
        assert_eq!(
            seq, par,
            "sweep CSV bytes diverged between --threads 1 and --threads 3 under {policy}"
        );
    }
}
