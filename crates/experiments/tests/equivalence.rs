//! Engine-vs-legacy equivalence: the refactored sweep must reproduce the
//! pre-refactor `results/sweep.csv` byte-for-byte.
//!
//! Two layers of defense:
//!
//! * `golden_sweep_slice.csv` is a **frozen** slice of the CSV produced by
//!   the pre-engine harness (direct `Optimizer`/`Simulator` plumbing) —
//!   two cheap programs × all 36 Table 2 configurations. It is never
//!   regenerated, so engine drift cannot hide by updating the cache.
//! * A sampled set of units is compared against the checked-in
//!   `results/sweep.csv`, covering bigger programs across geometry
//!   extremes without paying for the full 37 × 36 grid (the full grid was
//!   diffed once at refactor time: identical).

use rtpf_cache::CacheConfig;

const GOLDEN: &str = include_str!("golden_sweep_slice.csv");

#[test]
fn engine_sweep_slice_matches_pre_refactor_csv_byte_for_byte() {
    let mut rows = Vec::new();
    for name in ["fibcall", "sqrt"] {
        let b = rtpf_suite::by_name(name).expect("known");
        for (k, config) in CacheConfig::paper_configs() {
            rows.push(rtpf_experiments::run_unit(name, &b.program, &k, config));
        }
    }
    rows.sort_by(|x, y| (&x.program, &x.k).cmp(&(&y.program, &y.k)));
    assert_eq!(
        rtpf_experiments::to_csv(&rows),
        GOLDEN,
        "engine sweep diverged from the pre-refactor CSV"
    );
}

/// Cheap-but-diverse sample: small programs across geometry extremes.
const SAMPLE: &[(&str, &str)] = &[
    ("bs", "k1"),
    ("bs", "k36"),
    ("crc", "k8"),
    ("fft1", "k7"),
    ("insertsort", "k20"),
    ("matmult", "k25"),
];

#[test]
fn sampled_units_match_checked_in_sweep_rows() {
    let cache = std::fs::read_to_string(rtpf_experiments::cache_path())
        .expect("checked-in results/sweep.csv present");
    let configs = CacheConfig::paper_configs();
    for &(name, k) in SAMPLE {
        let b = rtpf_suite::by_name(name).expect("suite program");
        let (_, config) = configs
            .iter()
            .find(|(id, _)| id == k)
            .expect("paper config");
        let row = rtpf_experiments::run_unit(name, &b.program, k, *config);
        let line = rtpf_experiments::to_csv(std::slice::from_ref(&row));
        let line = line.lines().nth(1).expect("one data row");
        let want_prefix = format!("{name},{k},");
        let want = cache
            .lines()
            .find(|l| l.starts_with(&want_prefix))
            .unwrap_or_else(|| panic!("no cached row for {name} {k}"));
        assert_eq!(line, want, "unit {name} {k} diverged from cached sweep row");
    }
}

#[test]
fn l1_only_hierarchy_reproduces_checked_in_sweeps_for_every_policy() {
    // The multi-level refactor's degenerate-case guard: an L1-only
    // `HierarchyConfig` is what every evaluation profile now runs under,
    // and it must reproduce the pre-hierarchy sweep bytes for all three
    // replacement policies — the frozen golden slice for LRU, the
    // checked-in per-policy artifacts for FIFO/PLRU.
    use rtpf_cache::{HierarchyConfig, ReplacementPolicy};
    for policy in ReplacementPolicy::ALL {
        let reference = match policy {
            ReplacementPolicy::Lru => GOLDEN.to_string(),
            p => std::fs::read_to_string(rtpf_experiments::cache_path_for(p))
                .expect("checked-in per-policy sweep present"),
        };
        for name in ["fibcall", "sqrt"] {
            let b = rtpf_suite::by_name(name).expect("known");
            for (k, config) in rtpf_experiments::paper_configs_for(policy) {
                // The profile really is the degenerate hierarchy…
                let econfig = rtpf_engine::EngineConfig::evaluation(config);
                assert_eq!(econfig.hierarchy(), HierarchyConfig::l1_only(config));
                assert!(econfig.l2().is_none());
                // …and its unit row matches the pre-hierarchy bytes.
                let row = rtpf_experiments::run_unit(name, &b.program, &k, config);
                let line = rtpf_experiments::to_csv(std::slice::from_ref(&row));
                let line = line.lines().nth(1).expect("one data row");
                let want_prefix = format!("{name},{k},");
                let want = reference
                    .lines()
                    .find(|l| l.starts_with(&want_prefix))
                    .unwrap_or_else(|| panic!("no {policy} reference row for {name} {k}"));
                assert_eq!(
                    line, want,
                    "L1-only hierarchy diverged from the pre-hierarchy {policy} bytes \
                     on {name} {k}"
                );
            }
        }
    }
}

#[test]
fn explicit_lru_policy_is_byte_identical_to_the_default() {
    // The policy-generic refactor must leave the paper's LRU numbers
    // untouched: selecting LRU *explicitly* reproduces the frozen
    // pre-refactor slice byte-for-byte, exactly like the default does.
    use rtpf_cache::ReplacementPolicy;
    let mut rows = Vec::new();
    for name in ["fibcall", "sqrt"] {
        let b = rtpf_suite::by_name(name).expect("known");
        for (k, config) in rtpf_experiments::paper_configs_for(ReplacementPolicy::Lru) {
            assert_eq!(config.policy(), ReplacementPolicy::Lru);
            rows.push(rtpf_experiments::run_unit(name, &b.program, &k, config));
        }
    }
    rows.sort_by(|x, y| (&x.program, &x.k).cmp(&(&y.program, &y.k)));
    assert_eq!(
        rtpf_experiments::to_csv(&rows),
        GOLDEN,
        "explicit --policy lru diverged from the pre-refactor CSV"
    );
}
