//! Regenerates the paper's Figure 5: the optimized program on 1/2 and 1/4
//! of the original capacity, vs. the original program on the full
//! capacity. Negative "impr" means the shrunken optimized program is
//! still better than the full-size original (the paper's shaded region,
//! energy reductions up to 21%).

use rtpf_experiments::{sweep, CAPACITIES};

fn main() {
    let rows = sweep();
    println!("Figure 5: optimized program on reduced cache sizes vs original on full size");
    println!(
        "{:>9} {:>6} {:>11} {:>13} {:>11}",
        "capacity", "ratio", "ACET impr", "energy impr", "WCET impr"
    );
    for (div, label) in [(2u32, "1/2"), (4, "1/4")] {
        for c in CAPACITIES {
            let mut acet = Vec::new();
            let mut energy = Vec::new();
            let mut wcet = Vec::new();
            for r in rows.iter().filter(|r| r.capacity == c) {
                let small = if div == 2 { &r.half } else { &r.quarter };
                if let Some(v) = small {
                    wcet.push(v[0] / r.wcet_orig as f64);
                    acet.push(v[1] / r.acet_orig);
                    energy.push(((v[2] / r.energy_orig[0]) + (v[3] / r.energy_orig[1])) / 2.0);
                }
            }
            let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
            if acet.is_empty() {
                continue;
            }
            println!(
                "{:>8}B {:>6} {:>10.1}% {:>12.1}% {:>10.1}%",
                c,
                label,
                100.0 * (1.0 - mean(&acet)),
                100.0 * (1.0 - mean(&energy)),
                100.0 * (1.0 - mean(&wcet))
            );
        }
    }
    println!("(paper: energy reductions up to 21% with 1/2 and 1/4 capacities)");
}
