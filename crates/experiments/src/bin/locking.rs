//! Extension experiment (the paper's §6 future work, implemented): the
//! energy impact of **static cache locking** [4, 14, 16, 2] side by side
//! with unlocked-cache prefetching, across technologies.
//!
//! The paper's §2.3 argument: locking trades dynamic energy for a longer
//! ACET, so as leakage grows with shrinking technology nodes, locking's
//! energy bill grows with it — while the prefetching approach shortens
//! the ACET and saves static energy. This binary quantifies that claim
//! on the reproduction stack.

use rtpf_baselines::locking::{locked_tau_w, select_locked_greedy};
use rtpf_energy::{EnergyModel, Technology};
use rtpf_engine::EngineConfig;
use rtpf_sim::Simulator;

fn main() {
    let programs = ["fft1", "compress", "ndes", "adpcm", "whet", "statemate"];
    let config = EngineConfig::geometry(2, 16, 1024).expect("valid");
    let sim_config = || EngineConfig::evaluation(config).sim_config();
    println!("Locking vs unlocked prefetching on {config} (ratios vs on-demand baseline)\n");
    println!(
        "{:<11} {:>10} {:>10} | {:>9} {:>9} | {:>9} {:>9}",
        "program", "lock WCET", "pf WCET", "lockE@45", "pfE@45", "lockE@32", "pfE@32"
    );

    let mut lock_sums = [0.0f64; 3];
    let mut pf_sums = [0.0f64; 3];
    let mut n = 0.0;
    for name in programs {
        let b = rtpf_suite::by_name(name).expect("known");
        let m45 = EnergyModel::new(&config, Technology::Nm45);
        let m32 = EnergyModel::new(&config, Technology::Nm32);
        let timing = m45.timing();
        let sim = Simulator::new(config, timing, sim_config());

        let base = sim.run(&b.program).expect("simulates");
        let base_tau = rtpf_wcet::WcetAnalysis::analyze(&b.program, &config, &timing)
            .expect("analyzes")
            .tau_w();

        let locked = select_locked_greedy(&b.program, &config, &timing).expect("selects");
        let lock_tau = locked_tau_w(&b.program, &config, &timing, &locked).expect("bounds");
        let lock_run = sim.run_locked(&b.program, &locked).expect("simulates");

        let gated = rtpf_experiments::optimize_with_condition3(&b.program, config);
        let opt = gated.opt;
        let opt_run = gated.sim_opt;

        let ratio = |m: &EnergyModel, run: &rtpf_sim::SimResult| {
            m.energy_of(&run.mean_stats()).total_nj() / m.energy_of(&base.mean_stats()).total_nj()
        };
        let lw = lock_tau as f64 / base_tau as f64;
        let pw = opt.report.wcet_after as f64 / base_tau as f64;
        let (l45, p45) = (ratio(&m45, &lock_run), ratio(&m45, &opt_run));
        let (l32, p32) = (ratio(&m32, &lock_run), ratio(&m32, &opt_run));
        println!(
            "{:<11} {:>10.3} {:>10.3} | {:>9.3} {:>9.3} | {:>9.3} {:>9.3}",
            name, lw, pw, l45, p45, l32, p32
        );
        lock_sums[0] += lw;
        lock_sums[1] += l45;
        lock_sums[2] += l32;
        pf_sums[0] += pw;
        pf_sums[1] += p45;
        pf_sums[2] += p32;
        n += 1.0;
    }
    println!(
        "\naverages: locking WCET x{:.3}, E@45 x{:.3}, E@32 x{:.3}",
        lock_sums[0] / n,
        lock_sums[1] / n,
        lock_sums[2] / n
    );
    println!(
        "          prefetch WCET x{:.3}, E@45 x{:.3}, E@32 x{:.3}",
        pf_sums[0] / n,
        pf_sums[1] / n,
        pf_sums[2] / n
    );
    println!("\n(§2.3: locking's energy penalty should worsen from 45nm to 32nm;");
    println!(" prefetching must never exceed 1.0 on WCET and stay at or below baseline energy)");
}
