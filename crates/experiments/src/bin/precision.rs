//! Per-policy precision scores of the abstract classifier, recorded as
//! the `results/precision.csv` artifact.
//!
//! For each replacement policy the soundness audit walks every
//! `(program, Table 2 configuration)` unit concretely and scores how
//! often the abstract classification matched the observed behaviour.
//! The LRU row is the analog of the repository's headline ≈0.98 figure;
//! FIFO and PLRU go through the competitiveness-based reductions of
//! DESIGN.md §10 — scored both raw (`mean_precision_cheap`) and with the
//! exact per-set refinement of DESIGN.md §12 applied (`mean_precision`).
//! The audit asserts every policy is *sound* (zero RTPF020/022/040/042
//! findings).
//!
//! With `--check` the run additionally enforces the committed precision
//! record ([`rtpf_experiments::PRECISION_RECORD`]): any policy scoring
//! below its record, or any unsound finding, fails the process — the CI
//! ratchet against precision regressions.

fn main() {
    use rtpf_cache::ReplacementPolicy;

    let check = std::env::args().any(|a| a == "--check");
    let t0 = std::time::Instant::now();
    let mut failures = Vec::new();
    let rows: Vec<_> = ReplacementPolicy::ALL
        .into_iter()
        .map(|policy| {
            let r = rtpf_experiments::measure_precision(policy);
            println!(
                "{policy}: mean precision {:.3} (cheap {:.3}, {} refs refined) over {} \
                 analyses ({} unsound, {} precision gaps)",
                r.mean_precision,
                r.mean_precision_cheap,
                r.refined,
                r.analyses,
                r.unsound,
                r.precision_gaps
            );
            assert_eq!(
                r.unsound, 0,
                "{policy}: abstract classifier contradicted the concrete cache"
            );
            assert!(
                r.mean_precision >= r.mean_precision_cheap,
                "{policy}: refinement may never lose precision \
                 ({:.6} < {:.6})",
                r.mean_precision,
                r.mean_precision_cheap
            );
            if check {
                let record = rtpf_experiments::precision_record(policy);
                if r.mean_precision < record {
                    failures.push(format!(
                        "{policy}: measured precision {:.6} fell below the committed \
                         record {record:.3}",
                        r.mean_precision
                    ));
                }
            }
            r
        })
        .collect();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("precision --check: {f}");
        }
        std::process::exit(1);
    }
    let store = rtpf_experiments::results_store();
    store
        .disk_put(
            "precision.csv",
            rtpf_experiments::precision_artifact_key(),
            &rtpf_experiments::precision_to_csv(&rows),
        )
        .expect("persist precision artifact");
    println!(
        "precision audit complete in {:.1}s: {}{}",
        t0.elapsed().as_secs_f64(),
        store
            .disk_path("precision.csv")
            .expect("store has a disk layer")
            .display(),
        if check { " (record check passed)" } else { "" }
    );
}
