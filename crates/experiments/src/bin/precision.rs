//! Per-policy precision scores of the abstract classifier, recorded as
//! the `results/precision.csv` artifact.
//!
//! For each replacement policy the soundness audit walks every
//! `(program, Table 2 configuration)` unit concretely and scores how
//! often the abstract classification matched the observed behaviour.
//! The LRU row is the analog of the repository's headline ≈0.98 figure;
//! FIFO and PLRU go through the competitiveness-based reductions of
//! DESIGN.md §10 and are expected to score lower — the audit asserts
//! they are still *sound* (zero RTPF020/RTPF022 findings).

fn main() {
    use rtpf_cache::ReplacementPolicy;

    let t0 = std::time::Instant::now();
    let rows: Vec<_> = ReplacementPolicy::ALL
        .into_iter()
        .map(|policy| {
            let r = rtpf_experiments::measure_precision(policy);
            println!(
                "{policy}: mean precision {:.3} over {} analyses \
                 ({} unsound, {} precision gaps)",
                r.mean_precision, r.analyses, r.unsound, r.precision_gaps
            );
            assert_eq!(
                r.unsound, 0,
                "{policy}: abstract classifier contradicted the concrete cache"
            );
            r
        })
        .collect();
    let store = rtpf_experiments::results_store();
    store
        .disk_put(
            "precision.csv",
            rtpf_experiments::precision_artifact_key(),
            &rtpf_experiments::precision_to_csv(&rows),
        )
        .expect("persist precision artifact");
    println!(
        "precision audit complete in {:.1}s: {}",
        t0.elapsed().as_secs_f64(),
        store
            .disk_path("precision.csv")
            .expect("store has a disk layer")
            .display()
    );
}
