//! Regenerates the paper's Table 1: benchmark program identification.

fn main() {
    println!("Table 1: Program identification (Mälardalen WCET benchmark)");
    println!(
        "{:<6} {:<14} {:>8} {:>7}  description",
        "ID", "program", "instrs", "bytes"
    );
    for b in rtpf_suite::catalog() {
        println!(
            "{:<6} {:<14} {:>8} {:>7}  {}",
            b.id,
            b.name,
            b.program.instr_count(),
            b.program.code_bytes(),
            b.description
        );
    }
}
