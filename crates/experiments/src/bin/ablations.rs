//! Result-quality ablations of the design choices DESIGN.md calls out
//! (their *runtime* costs are measured by `cargo bench -p rtpf-bench`):
//!
//! 1. effectiveness check on/off — does ignoring the latency window (the
//!    WCET-only prior work, paper ref [5]) change the outcome?
//! 2. `J_SE` WCET-path join vs. a conventional first-successor join in
//!    the reverse analysis — how many useful candidates does each see?
//! 3. single optimization round vs. iterating to a fixpoint.
//!
//! Each knob setting is its own [`Engine`]; all engines share one
//! artifact store, so e.g. the analysis ablation 2 pulls is computed once
//! no matter how many engines ask for it.

use std::sync::Arc;

use rtpf_core::{candidates, JoinPolicy};
use rtpf_engine::{ArtifactStore, Engine, EngineConfig};

fn main() {
    let programs = ["crc", "fft1", "compress", "ndes", "whet"];
    let config = EngineConfig::geometry(2, 16, 512).expect("valid");
    let base = EngineConfig::interactive(config);
    let store = Arc::new(ArtifactStore::in_memory());
    let engine = |cfg: EngineConfig| Engine::with_store(cfg, Arc::clone(&store));

    println!("== ablation 1: effectiveness condition (Definition 10) ==");
    println!(
        "{:<10} {:>14} {:>14} {:>9} {:>9}",
        "program", "wcet_on", "wcet_off", "ins_on", "ins_off"
    );
    let eng_on = engine(base.clone());
    let eng_off = engine(base.clone().with_check_effectiveness(false));
    for name in programs {
        let b = rtpf_suite::by_name(name).expect("known");
        let on = eng_on.optimized(&b.program).expect("optimizes").report;
        let off = eng_off.optimized(&b.program).expect("optimizes").report;
        println!(
            "{:<10} {:>14} {:>14} {:>9} {:>9}",
            name, on.wcet_after, off.wcet_after, on.inserted, off.inserted
        );
    }
    println!(
        "(identical outcomes mean the end-to-end verifier caught every\n\
         ineffective insertion the filter would have skipped; the filter's\n\
         value is avoiding that wasted verification work up front)"
    );

    println!("\n== ablation 2: reverse-analysis join (J_SE vs first-successor) ==");
    println!(
        "{:<10} {:>12} {:>12} {:>16}",
        "program", "cands_jse", "cands_first", "on-path (jse)"
    );
    for name in programs {
        let b = rtpf_suite::by_name(name).expect("known");
        let a = eng_on.analysis(&b.program).expect("analyzes");
        let jse = candidates::scan_with_join(&b.program, &a, JoinPolicy::WcetPath);
        let first = candidates::scan_with_join(&b.program, &a, JoinPolicy::FirstSucc);
        let on_path = jse.iter().filter(|c| a.on_wcet_path(c.r_i)).count();
        println!(
            "{:<10} {:>12} {:>12} {:>16}",
            name,
            jse.len(),
            first.len(),
            on_path
        );
    }

    println!("\n== ablation 3: single round vs iterative improvement ==");
    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "program", "wcet_orig", "wcet_1round", "wcet_fixpoint"
    );
    let eng_one = engine(base.clone().with_rounds(1));
    let eng_fix = engine(base.clone().with_rounds(12));
    for name in programs {
        let b = rtpf_suite::by_name(name).expect("known");
        let one = eng_one.optimized(&b.program).expect("optimizes").report;
        let fixed = eng_fix.optimized(&b.program).expect("optimizes").report;
        println!(
            "{:<10} {:>14} {:>14} {:>14}",
            name, one.wcet_before, one.wcet_after, fixed.wcet_after
        );
        assert!(fixed.wcet_after <= one.wcet_after);
    }
}
