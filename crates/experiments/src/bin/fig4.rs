//! Regenerates the paper's Figure 4: impact on miss rate per cache size.

use rtpf_experiments::{mean_by_capacity, sweep, CAPACITIES};

fn main() {
    let rows = sweep();
    println!("Figure 4: Impact on miss rate (averages per cache size)");
    println!(
        "{:>9} {:>12} {:>12} {:>10}",
        "capacity", "orig miss%", "opt miss%", "reduction"
    );
    for c in CAPACITIES {
        let orig = mean_by_capacity(&rows, c, |r| r.missrate_orig);
        let opt = mean_by_capacity(&rows, c, |r| r.missrate_opt);
        println!(
            "{:>8}B {:>11.2}% {:>11.2}% {:>9.1}%",
            c,
            100.0 * orig,
            100.0 * opt,
            100.0 * (1.0 - opt / orig)
        );
    }
}
