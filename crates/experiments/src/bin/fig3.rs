//! Regenerates the paper's Figure 3: average improvement in ACET, energy
//! consumption, and WCET per cache size (both technologies pooled for
//! energy, as in the paper). Improvement = 1 − optimized/original.

use rtpf_experiments::{mean_by_capacity, sweep, CAPACITIES};

fn main() {
    let rows = sweep();
    println!("Figure 3: Impact on energy efficiency (averages per cache size)");
    println!(
        "{:>9} {:>10} {:>13} {:>10}",
        "capacity", "ACET impr", "energy impr", "WCET impr"
    );
    let mut sums = [0.0f64; 3];
    for c in CAPACITIES {
        let acet = 1.0 - mean_by_capacity(&rows, c, |r| r.acet_ratio());
        // Pool the two technologies, as the paper's Inequation 10 does.
        let energy =
            1.0 - mean_by_capacity(&rows, c, |r| (r.energy_ratio(0) + r.energy_ratio(1)) / 2.0);
        let wcet = 1.0 - mean_by_capacity(&rows, c, |r| r.wcet_ratio());
        println!(
            "{:>8}B {:>9.1}% {:>12.1}% {:>9.1}%",
            c,
            100.0 * acet,
            100.0 * energy,
            100.0 * wcet
        );
        sums[0] += acet;
        sums[1] += energy;
        sums[2] += wcet;
    }
    let n = CAPACITIES.len() as f64;
    println!(
        "{:>9} {:>9.1}% {:>12.1}% {:>9.1}%",
        "overall",
        100.0 * sums[0] / n,
        100.0 * sums[1] / n,
        100.0 * sums[2] / n
    );
    println!("(paper: ACET 10.2%, energy 11.2%, WCET 17.4% overall)");
}
