//! Runs the L2-capacity sweep — all 37 programs × the fixed-L1 axis of
//! `rtpf_experiments::l2_sweep_points` (an L1-only baseline plus one
//! two-level profile per swept L2 capacity) — and caches it under
//! `results/sweep-l2.csv` with its `.hash` sidecar.

fn main() {
    let t0 = std::time::Instant::now();
    let rows = rtpf_experiments::l2_sweep();
    println!(
        "sweep[l2] complete: {} units in {:.1}s",
        rows.len(),
        t0.elapsed().as_secs_f64()
    );
    let violations = rows
        .iter()
        .filter(|(_, r)| r.wcet_opt > r.wcet_orig)
        .count();
    println!("Theorem 1 violations: {violations} (must be 0)");
    assert_eq!(violations, 0, "Theorem 1 violated on the L2 sweep");

    // The L2 can only help: with the L1 stream unchanged, every swept
    // capacity must keep the original-program WCET at or below the
    // baseline's (an L1 miss now costs an L2 hit at best, DRAM at worst).
    let mut worse = 0usize;
    for (_, base) in rows.iter().filter(|(l2, _)| l2.is_none()) {
        for (_, two) in rows
            .iter()
            .filter(|(l2, r)| l2.is_some() && r.program == base.program)
        {
            if two.wcet_orig > base.wcet_orig {
                worse += 1;
            }
        }
    }
    println!("two-level WCETs above the L1-only baseline: {worse} (must be 0)");
    assert_eq!(worse, 0, "an L2 made some WCET bound worse");
    println!("cache: {}", rtpf_experiments::l2_cache_path().display());
}
