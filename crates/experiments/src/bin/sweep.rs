//! Runs the full 37 × 36 evaluation sweep and caches it under
//! `results/sweep.csv` (LRU) or `results/sweep-<policy>.csv`. Every
//! figure binary reuses the LRU cache; pass `fifo` or `plru` to sweep
//! the alternative replacement policies.

use rtpf_cache::ReplacementPolicy;

fn main() {
    let policy = match std::env::args().nth(1) {
        Some(name) => ReplacementPolicy::parse(&name).unwrap_or_else(|| {
            eprintln!("unknown policy {name} (expected lru|fifo|plru)");
            std::process::exit(2);
        }),
        None => ReplacementPolicy::Lru,
    };
    let t0 = std::time::Instant::now();
    let rows = rtpf_experiments::sweep_for(policy);
    println!(
        "sweep[{policy}] complete: {} units in {:.1}s",
        rows.len(),
        t0.elapsed().as_secs_f64()
    );
    let violations = rows.iter().filter(|r| r.wcet_opt > r.wcet_orig).count();
    println!("Theorem 1 violations: {violations} (must be 0)");
    let total_inserted: u64 = rows.iter().map(|r| u64::from(r.inserted)).sum();
    println!("total prefetches inserted: {total_inserted}");
    println!(
        "cache: {}",
        rtpf_experiments::cache_path_for(policy).display()
    );
}
