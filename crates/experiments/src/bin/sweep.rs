//! Runs the full 37 × 36 evaluation sweep and caches it under
//! `results/sweep.csv`. Every figure binary reuses the cache.

fn main() {
    let t0 = std::time::Instant::now();
    let rows = rtpf_experiments::sweep();
    println!(
        "sweep complete: {} units in {:.1}s",
        rows.len(),
        t0.elapsed().as_secs_f64()
    );
    let violations = rows.iter().filter(|r| r.wcet_opt > r.wcet_orig).count();
    println!("Theorem 1 violations: {violations} (must be 0)");
    let total_inserted: u64 = rows.iter().map(|r| u64::from(r.inserted)).sum();
    println!("total prefetches inserted: {total_inserted}");
    println!("cache: {}", rtpf_experiments::cache_path().display());
}
