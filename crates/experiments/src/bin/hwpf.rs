//! Extension experiment (paper §2 / reference [22]): hardware next-line
//! prefetching vs. the paper's software insertion, on both axes that
//! matter to a real-time engineer:
//!
//! * **average case** — simulated ACET with a real next-line prefetcher
//!   (latency modelled, pollution included);
//! * **worst case** — the WCET bound. For hardware prefetching the bound
//!   shown uses the idealized next-line abstract semantics of [22]
//!   (prefetch always completes in time), i.e. it is a *best case for
//!   hardware*; the software technique's bound is fully guaranteed
//!   (Theorem 1) and needs no timing leap of faith.

use rtpf_baselines::hw::{simulate_hw, HwScheme};
use rtpf_energy::{EnergyModel, Technology};
use rtpf_engine::EngineConfig;
use rtpf_experiments::optimize_with_condition3;
use rtpf_sim::Simulator;
use rtpf_wcet::WcetAnalysis;

fn main() {
    let programs = ["fft1", "compress", "ndes", "jfdctint", "edn", "adpcm"];
    let config = EngineConfig::geometry(2, 16, 512).expect("valid");
    let timing = EnergyModel::new(&config, Technology::Nm45).timing();
    let sim_config = || EngineConfig::evaluation(config).sim_config();
    println!("Hardware next-line vs software prefetch insertion on {config}\n");
    println!(
        "{:<10} {:>11} {:>11} {:>11} | {:>10} {:>12} {:>10}",
        "program", "base ACET", "hw ACET", "sw ACET", "base WCET", "hw WCET*", "sw WCET"
    );

    for name in programs {
        let b = rtpf_suite::by_name(name).expect("known");
        let sim = Simulator::new(config, timing, sim_config());

        let base_run = sim.run(&b.program).expect("simulates");
        let base_wcet = WcetAnalysis::analyze(&b.program, &config, &timing)
            .expect("analyzes")
            .tau_w();

        let hw_run = simulate_hw(
            &b.program,
            config,
            timing,
            sim_config(),
            HwScheme::NextLine { n: 1 },
        )
        .expect("simulates");
        let hw_wcet = WcetAnalysis::analyze_with_hw_next_line(&b.program, &config, &timing, 1)
            .expect("analyzes")
            .tau_w();

        let gated = optimize_with_condition3(&b.program, config);
        let opt = gated.opt;
        let sw_run = gated.sim_opt;

        println!(
            "{:<10} {:>11.0} {:>11.0} {:>11.0} | {:>10} {:>12} {:>10}",
            name,
            base_run.acet_cycles(),
            hw_run.acet_cycles(),
            sw_run.acet_cycles(),
            base_wcet,
            hw_wcet,
            opt.report.wcet_after,
        );
    }
    println!("\n* hw WCET assumes ideal prefetch timing (reference [22] semantics);");
    println!("  no hardware guarantees it, which is the paper's §2 argument for");
    println!("  software insertion: sw WCET is a sound bound (Theorem 1).");
}
