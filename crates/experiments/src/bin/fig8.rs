//! Regenerates the paper's Figure 8: ratio of executed instructions
//! (optimized / original) per cache size — the instruction overhead of
//! the inserted prefetches (paper maximum: +1.32%).

use rtpf_experiments::{mean_by_capacity, sweep, CAPACITIES};

fn main() {
    let rows = sweep();
    println!("Figure 8: executed-instruction ratio (optimized / original)");
    println!("{:>9} {:>10} {:>12}", "capacity", "avg ratio", "max ratio");
    let mut max_overall: f64 = 0.0;
    for c in CAPACITIES {
        let avg = mean_by_capacity(&rows, c, |r| r.instr_ratio());
        let max = rows
            .iter()
            .filter(|r| r.capacity == c)
            .map(|r| r.instr_ratio())
            .fold(0.0f64, f64::max);
        max_overall = max_overall.max(max);
        println!("{:>8}B {:>10.4} {:>12.4}", c, avg, max);
    }
    println!(
        "max increase: +{:.2}% (paper: +1.32%)",
        100.0 * (max_overall - 1.0)
    );
}
