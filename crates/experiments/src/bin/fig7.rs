//! Regenerates the paper's Figure 7: per-use-case WCET ratio
//! (Inequation 12) at 32 nm — τ_w(optimized)/τ_w(original) for each of
//! the 37 × 36 cases. The ratio must never exceed 1 (Theorem 1).

use rtpf_experiments::sweep;

fn main() {
    let rows = sweep();
    println!("Figure 7: WCET ratio per use case (32nm; timing is node-independent)");
    let mut ratios: Vec<f64> = rows.iter().map(|r| r.wcet_ratio()).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = ratios.len();
    let pct = |p: f64| ratios[((n as f64 - 1.0) * p) as usize];
    println!("use cases: {n}");
    println!(
        "min {:.3}  p10 {:.3}  p25 {:.3}  median {:.3}  p75 {:.3}  max {:.3}",
        ratios[0],
        pct(0.10),
        pct(0.25),
        pct(0.50),
        pct(0.75),
        ratios[n - 1]
    );
    let improved = ratios.iter().filter(|&&x| x < 1.0).count();
    println!(
        "improved cases: {improved} ({:.1}%)",
        100.0 * improved as f64 / n as f64
    );
    let violations = rows.iter().filter(|r| r.wcet_opt > r.wcet_orig).count();
    println!("Theorem 1 violations (ratio > 1): {violations}");
    assert_eq!(violations, 0, "Theorem 1 must hold on every use case");

    // Histogram over ratio buckets, like the figure's scatter density.
    println!("\nhistogram of τ_w(opt)/τ_w(orig):");
    let buckets = [0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.9999, 1.0001];
    let mut lo = 0.0;
    for &hi in &buckets {
        let count = ratios.iter().filter(|&&x| x >= lo && x < hi).count();
        println!(
            "  [{lo:.2}, {hi:.2}): {count:>5} {}",
            "#".repeat(count * 60 / n.max(1))
        );
        lo = hi;
    }
}
