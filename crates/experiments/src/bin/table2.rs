//! Regenerates the paper's Table 2: the 36 cache configurations.

use rtpf_cache::CacheConfig;
use rtpf_energy::{EnergyModel, Technology};

fn main() {
    println!("Table 2: Cache configurations (a = assoc, b = block bytes, c = capacity)");
    println!(
        "{:<5} {:>2} {:>3} {:>6} {:>6} {:>10} {:>12} {:>12}",
        "ID", "a", "b", "c", "sets", "miss_cyc", "read_nJ@45", "leak_mW@45"
    );
    for (k, cfg) in CacheConfig::paper_configs() {
        let m = EnergyModel::new(&cfg, Technology::Nm45);
        println!(
            "{:<5} {:>2} {:>3} {:>6} {:>6} {:>10} {:>12.4} {:>12.4}",
            k,
            cfg.assoc(),
            cfg.block_bytes(),
            cfg.capacity_bytes(),
            cfg.n_sets(),
            m.timing().miss_cycles,
            m.read_energy_nj(),
            m.leakage_mw()
        );
    }
}
