//! The paper's evaluation harness (§5 / Supplement S.4).
//!
//! One *use case* is a `(program, cache configuration, technology)`
//! triple; the full evaluation covers 37 programs × 36 configurations × 2
//! technologies = **2664 use cases**. Because our timing model is
//! technology-independent (only energy scales with the node), the
//! expensive work — WCET analysis, prefetch optimization, and trace
//! simulation — runs once per `(program, configuration)` pair (1332
//! units) and both technologies' energies are derived from it.
//!
//! [`sweep`] runs everything in parallel and caches the per-unit metrics
//! as CSV under `results/sweep.csv`; the per-figure binaries (`fig3`,
//! `fig4`, `fig5`, `fig7`, `fig8`, `table1`, `table2`) reuse the cache so
//! each figure regenerates instantly once the sweep has run.
//!
//! Reported numbers are ratios (optimized / original), matching the
//! paper's Inequations 10–12.

#![forbid(unsafe_code)]

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use rtpf_cache::CacheConfig;
use rtpf_core::{OptimizeParams, Optimizer};
use rtpf_energy::{EnergyModel, MemStats, Technology};
use rtpf_isa::Program;
use rtpf_sim::{BranchBehavior, SimConfig, SimResult, Simulator};

/// Metrics of one `(program, configuration)` unit (both technologies).
#[derive(Clone, Debug, PartialEq)]
pub struct UnitResult {
    /// Benchmark name (Table 1).
    pub program: String,
    /// Configuration id (`k1`..`k36`, Table 2).
    pub k: String,
    /// Cache geometry.
    pub assoc: u32,
    /// Block size in bytes.
    pub block: u32,
    /// Capacity in bytes.
    pub capacity: u32,
    /// Inserted prefetches.
    pub inserted: u32,
    /// `τ_w` of the original / optimized program.
    pub wcet_orig: u64,
    /// `τ_w` of the optimized program.
    pub wcet_opt: u64,
    /// Simulated ACET cycles (memory contribution), original / optimized.
    pub acet_orig: f64,
    /// Simulated ACET cycles of the optimized program.
    pub acet_opt: f64,
    /// Simulated miss rate of the original program.
    pub missrate_orig: f64,
    /// Simulated miss rate of the optimized program (prefetch-satisfied
    /// fetches count as hits, as in the paper's Figure 4).
    pub missrate_opt: f64,
    /// Executed instructions per run, original / optimized (Figure 8).
    pub instr_orig: f64,
    /// Executed instructions per run of the optimized program.
    pub instr_opt: f64,
    /// Memory-system energy (nJ), per technology, original then optimized.
    pub energy_orig: [f64; 2],
    /// Energy of the optimized program per technology.
    pub energy_opt: [f64; 2],
    /// Figure 5: optimized program run on capacity/2 — `(wcet, acet,
    /// energy45, energy32)`; `None` when the shrunken geometry is invalid.
    pub half: Option<[f64; 4]>,
    /// Figure 5: optimized program run on capacity/4.
    pub quarter: Option<[f64; 4]>,
}

impl UnitResult {
    /// Energy ratio optimized/original for a technology index
    /// (0 = 45 nm, 1 = 32 nm).
    pub fn energy_ratio(&self, tech: usize) -> f64 {
        self.energy_opt[tech] / self.energy_orig[tech]
    }

    /// ACET ratio optimized/original.
    pub fn acet_ratio(&self) -> f64 {
        self.acet_opt / self.acet_orig
    }

    /// WCET ratio optimized/original (Inequation 12).
    pub fn wcet_ratio(&self) -> f64 {
        self.wcet_opt as f64 / self.wcet_orig as f64
    }

    /// Executed-instruction ratio (Figure 8).
    pub fn instr_ratio(&self) -> f64 {
        self.instr_opt / self.instr_orig
    }
}

/// Simulation policy used throughout the evaluation.
///
/// The Mälardalen programs are single-path by design (fixed loop counts,
/// data-independent control flow), so the ACET traces run every loop to
/// its bound — [`BranchBehavior::WorstLike`] — with conditionals drawn
/// from the seeded RNG. This mirrors the paper's gem5 traces far better
/// than uniformly random loop trip counts would.
pub fn sim_config() -> SimConfig {
    SimConfig {
        behavior: BranchBehavior::WorstLike,
        seed: 0x5EED_2013,
        runs: 2,
        max_fetches: 4_000_000,
    }
}

/// Optimizer knobs used throughout the evaluation. The verification
/// budget adapts to program size: each one-at-a-time verification costs a
/// full WCET analysis, which is what dominates on the two giant generated
/// programs (`nsichneu`, `statemate`).
pub fn optimize_params(timing: rtpf_cache::MemTiming, instr_count: usize) -> OptimizeParams {
    let big = instr_count >= 1000;
    OptimizeParams {
        timing,
        max_rounds: if big { 8 } else { 20 },
        max_prefetches: 256,
        max_singles_per_round: if big { 12 } else { 48 },
        ..OptimizeParams::default()
    }
}

fn energy_of(model: &EnergyModel, stats: MemStats) -> f64 {
    model.energy_of(&stats).total_nj()
}

fn simulate(p: &Program, config: CacheConfig, timing: rtpf_cache::MemTiming) -> SimResult {
    Simulator::new(config, timing, sim_config())
        .run(p)
        .expect("suite programs simulate")
}

/// An optimization that passed the paper's Condition 3 gate (or the
/// original program if it did not).
pub struct Gated {
    /// The optimization result actually shipped.
    pub opt: rtpf_core::OptimizeResult,
    /// Simulation of the original program.
    pub sim_orig: SimResult,
    /// Simulation of the shipped program.
    pub sim_opt: SimResult,
}

/// Optimizes under the paper's three conditions: the optimizer enforces
/// Condition 1 (WCET non-increase) and Condition 2 (miss reduction on the
/// WCET path); this wrapper enforces **Condition 3** (the measured ACET —
/// and with it the static-dominated energy — must not increase), exactly
/// like the paper's outer iterative-improvement loop: when no improvement
/// is observed, the original (prefetch-equivalent) binary ships unchanged.
pub fn optimize_with_condition3(program: &Program, config: CacheConfig) -> Gated {
    let e45 = EnergyModel::new(&config, Technology::Nm45);
    let timing = e45.timing();
    let mut opt = Optimizer::new(config, optimize_params(timing, program.instr_count()))
        .run(program)
        .expect("suite programs optimize");
    let sim_orig = simulate(program, config, timing);
    let mut sim_opt = simulate(&opt.program, config, timing);
    let regressed = sim_opt.acet_cycles() > sim_orig.acet_cycles() * 1.001
        || energy_of(&e45, sim_opt.mean_stats()) > energy_of(&e45, sim_orig.mean_stats()) * 1.0005;
    if regressed {
        opt = Optimizer::new(
            config,
            OptimizeParams {
                max_rounds: 0,
                ..optimize_params(timing, program.instr_count())
            },
        )
        .run(program)
        .expect("no-op optimization succeeds");
        sim_opt = sim_orig;
    }
    Gated {
        opt,
        sim_orig,
        sim_opt,
    }
}

/// Runs one `(program, configuration)` unit.
pub fn run_unit(name: &str, program: &Program, k: &str, config: CacheConfig) -> UnitResult {
    let model45 = EnergyModel::new(&config, Technology::Nm45);
    let model32 = EnergyModel::new(&config, Technology::Nm32);
    let Gated {
        opt,
        sim_orig,
        sim_opt,
    } = optimize_with_condition3(program, config);

    let e_orig = [
        energy_of(&model45, sim_orig.mean_stats()),
        energy_of(&model32, sim_orig.mean_stats()),
    ];
    let e_opt = [
        energy_of(&model45, sim_opt.mean_stats()),
        energy_of(&model32, sim_opt.mean_stats()),
    ];

    // Figure 5: the optimized binary on half / quarter capacity.
    let shrunk = |divisor: u32| -> Option<[f64; 4]> {
        let small = config.shrink(divisor).ok()?;
        let m45 = EnergyModel::new(&small, Technology::Nm45);
        let m32 = EnergyModel::new(&small, Technology::Nm32);
        let t = m45.timing();
        let wcet = rtpf_wcet::WcetAnalysis::analyze_with_layout(
            &opt.program,
            opt.analysis_after.layout().clone(),
            &small,
            &t,
        )
        .ok()?
        .tau_w();
        let sim = Simulator::new(small, t, sim_config())
            .run(&opt.program)
            .ok()?;
        Some([
            wcet as f64,
            sim.acet_cycles(),
            energy_of(&m45, sim.mean_stats()),
            energy_of(&m32, sim.mean_stats()),
        ])
    };

    UnitResult {
        program: name.to_string(),
        k: k.to_string(),
        assoc: config.assoc(),
        block: config.block_bytes(),
        capacity: config.capacity_bytes(),
        inserted: opt.report.inserted,
        wcet_orig: opt.report.wcet_before,
        wcet_opt: opt.report.wcet_after,
        acet_orig: sim_orig.acet_cycles(),
        acet_opt: sim_opt.acet_cycles(),
        missrate_orig: sim_orig.miss_rate(),
        missrate_opt: sim_opt.miss_rate(),
        instr_orig: sim_orig.mean_instr_executed(),
        instr_opt: sim_opt.mean_instr_executed(),
        energy_orig: e_orig,
        energy_opt: e_opt,
        half: shrunk(2),
        quarter: shrunk(4),
    }
}

/// Location of the sweep cache.
pub fn cache_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/sweep.csv")
}

/// Runs (or loads) the full 37 × 36 sweep.
///
/// A cache file that fails to parse (or has the wrong row count) is
/// discarded and the sweep recomputed; debug builds additionally assert,
/// since a corrupt cache usually means a writer bug.
pub fn sweep() -> Vec<UnitResult> {
    if let Ok(text) = fs::read_to_string(cache_path()) {
        match parse_csv(&text) {
            Ok(rows) if rows.len() == 37 * 36 => return rows,
            Ok(rows) => eprintln!(
                "cache has {} rows (expected {}), recomputing",
                rows.len(),
                37 * 36
            ),
            Err(e) => {
                debug_assert!(false, "corrupt sweep cache: {e}");
                eprintln!("corrupt sweep cache ({e}), recomputing");
            }
        }
    }
    let results = run_sweep();
    let _ = fs::create_dir_all(cache_path().parent().expect("has parent"));
    let mut f = fs::File::create(cache_path()).expect("create cache");
    f.write_all(to_csv(&results).as_bytes())
        .expect("write cache");
    results
}

/// Computes the sweep from scratch, in parallel.
///
/// Workers steal unit indices from a shared atomic counter and accumulate
/// results in per-worker buffers, which are scattered into index-addressed
/// slots after the join — there is no shared lock anywhere on the hot
/// path.
pub fn run_sweep() -> Vec<UnitResult> {
    let suite = rtpf_suite::catalog();
    let configs = CacheConfig::paper_configs();
    let units: Vec<(usize, usize)> = (0..suite.len())
        .flat_map(|p| (0..configs.len()).map(move |c| (p, c)))
        .collect();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let started = std::time::Instant::now();
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());

    let buffers: Vec<Vec<(usize, UnitResult)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, UnitResult)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= units.len() {
                            break;
                        }
                        let (pi, ci) = units[i];
                        let b = &suite[pi];
                        let (k, config) = &configs[ci];
                        local.push((i, run_unit(b.name, &b.program, k, *config)));
                        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                        if d.is_multiple_of(100) {
                            let rate = d as f64 / started.elapsed().as_secs_f64();
                            eprintln!("sweep: {d}/{} units ({rate:.2} units/s)", units.len());
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<UnitResult>> = Vec::new();
    slots.resize_with(units.len(), || None);
    for (i, r) in buffers.into_iter().flatten() {
        slots[i] = Some(r);
    }
    let mut out: Vec<UnitResult> = slots
        .into_iter()
        .map(|s| s.expect("every unit computed exactly once"))
        .collect();
    out.sort_by(|a, b| (&a.program, &a.k).cmp(&(&b.program, &b.k)));
    out
}

/// Column order of the CSV cache.
const COLUMNS: &str = "program,k,assoc,block,capacity,inserted,wcet_orig,wcet_opt,\
acet_orig,acet_opt,missrate_orig,missrate_opt,instr_orig,instr_opt,\
e45_orig,e45_opt,e32_orig,e32_opt,\
half_wcet,half_acet,half_e45,half_e32,quarter_wcet,quarter_acet,quarter_e45,quarter_e32";

/// Serializes results (stable column order, `nan` for absent Figure-5
/// entries).
pub fn to_csv(rows: &[UnitResult]) -> String {
    let mut s = String::from(COLUMNS);
    s.push('\n');
    for r in rows {
        let opt4 = |o: &Option<[f64; 4]>| -> String {
            match o {
                Some(v) => format!("{},{},{},{}", v[0], v[1], v[2], v[3]),
                None => "nan,nan,nan,nan".to_string(),
            }
        };
        s.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.program,
            r.k,
            r.assoc,
            r.block,
            r.capacity,
            r.inserted,
            r.wcet_orig,
            r.wcet_opt,
            r.acet_orig,
            r.acet_opt,
            r.missrate_orig,
            r.missrate_opt,
            r.instr_orig,
            r.instr_opt,
            r.energy_orig[0],
            r.energy_opt[0],
            r.energy_orig[1],
            r.energy_opt[1],
            opt4(&r.half),
            opt4(&r.quarter),
        ));
    }
    s
}

/// Parses the CSV cache back.
///
/// # Errors
///
/// Returns a description of the first malformed row instead of panicking;
/// callers treat that as a missing cache and recompute.
pub fn parse_csv(text: &str) -> Result<Vec<UnitResult>, String> {
    fn num<T: std::str::FromStr>(f: &[&str], i: usize, ln: usize) -> Result<T, String> {
        f[i].parse()
            .map_err(|_| format!("line {ln}: field {} ({:?}) is not a number", i + 1, f[i]))
    }
    let mut rows = Vec::new();
    for (idx, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let ln = idx + 1;
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 26 {
            return Err(format!("line {ln}: expected 26 fields, got {}", f.len()));
        }
        let opt4 = |i: usize| -> Result<Option<[f64; 4]>, String> {
            let mut v = [0.0f64; 4];
            for (j, slot) in v.iter_mut().enumerate() {
                *slot = num(&f, i + j, ln)?;
            }
            Ok(if v[0].is_nan() { None } else { Some(v) })
        };
        rows.push(UnitResult {
            program: f[0].to_string(),
            k: f[1].to_string(),
            assoc: num(&f, 2, ln)?,
            block: num(&f, 3, ln)?,
            capacity: num(&f, 4, ln)?,
            inserted: num(&f, 5, ln)?,
            wcet_orig: num(&f, 6, ln)?,
            wcet_opt: num(&f, 7, ln)?,
            acet_orig: num(&f, 8, ln)?,
            acet_opt: num(&f, 9, ln)?,
            missrate_orig: num(&f, 10, ln)?,
            missrate_opt: num(&f, 11, ln)?,
            instr_orig: num(&f, 12, ln)?,
            instr_opt: num(&f, 13, ln)?,
            energy_orig: [num(&f, 14, ln)?, num(&f, 16, ln)?],
            energy_opt: [num(&f, 15, ln)?, num(&f, 17, ln)?],
            half: opt4(18)?,
            quarter: opt4(22)?,
        });
    }
    Ok(rows)
}

/// Paper Table 2 capacities, used as Figure 3/4/5 x-axes.
pub const CAPACITIES: [u32; 6] = [256, 512, 1024, 2048, 4096, 8192];

/// Mean of `f` over the rows with the given capacity.
pub fn mean_by_capacity(rows: &[UnitResult], capacity: u32, f: impl Fn(&UnitResult) -> f64) -> f64 {
    let vals: Vec<f64> = rows
        .iter()
        .filter(|r| r.capacity == capacity)
        .map(&f)
        .filter(|v| v.is_finite())
        .collect();
    if vals.is_empty() {
        f64::NAN
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_preserves_rows() {
        let b = rtpf_suite::by_name("bs").unwrap();
        let cfg = CacheConfig::new(2, 16, 256).unwrap();
        let r = run_unit("bs", &b.program, "k2", cfg);
        let text = to_csv(std::slice::from_ref(&r));
        let back = parse_csv(&text).expect("roundtrip parses");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].program, r.program);
        assert_eq!(back[0].wcet_orig, r.wcet_orig);
        assert_eq!(back[0].inserted, r.inserted);
        assert!((back[0].acet_orig - r.acet_orig).abs() < 1e-9);
        assert_eq!(back[0].half.is_some(), r.half.is_some());
    }

    #[test]
    fn parse_csv_reports_malformed_rows_instead_of_panicking() {
        // Wrong field count.
        let short = format!("{COLUMNS}\nbs,k1,2,16\n");
        let err = parse_csv(&short).unwrap_err();
        assert!(err.contains("expected 26 fields"), "{err}");
        // Right count, non-numeric field.
        let bad = format!(
            "{COLUMNS}\nbs,k1,2,16,256,oops,1,1,1,1,0,0,1,1,1,1,1,1,\
             nan,nan,nan,nan,nan,nan,nan,nan\n"
        );
        let err = parse_csv(&bad).unwrap_err();
        assert!(err.contains("not a number"), "{err}");
        // Empty input (header only) is fine.
        assert!(parse_csv(&format!("{COLUMNS}\n")).unwrap().is_empty());
    }

    #[test]
    fn unit_satisfies_theorem_one() {
        let b = rtpf_suite::by_name("fft1").unwrap();
        let cfg = CacheConfig::new(1, 16, 512).unwrap();
        let r = run_unit("fft1", &b.program, "k7", cfg);
        assert!(r.wcet_opt <= r.wcet_orig);
        assert!(r.wcet_ratio() <= 1.0);
    }

    #[test]
    fn mean_by_capacity_filters() {
        let b = rtpf_suite::by_name("bs").unwrap();
        let r1 = run_unit(
            "bs",
            &b.program,
            "k1",
            CacheConfig::new(1, 16, 256).unwrap(),
        );
        let rows = vec![r1];
        assert!(mean_by_capacity(&rows, 256, |r| r.wcet_ratio()).is_finite());
        assert!(mean_by_capacity(&rows, 512, |r| r.wcet_ratio()).is_nan());
    }
}
