//! The paper's evaluation harness (§5 / Supplement S.4).
//!
//! One *use case* is a `(program, cache configuration, technology)`
//! triple; the full evaluation covers 37 programs × 36 configurations × 2
//! technologies = **2664 use cases**. Because our timing model is
//! technology-independent (only energy scales with the node), the
//! expensive work — WCET analysis, prefetch optimization, and trace
//! simulation — runs once per `(program, configuration)` pair (1332
//! units) and both technologies' energies are derived from it.
//!
//! All the actual analysis now lives in the shared [`rtpf_engine`]
//! pipeline; this crate is the harness layer — it picks the
//! [`EngineConfig::evaluation`] profile, drives the 37 × 36 grid, and
//! persists the result as the on-disk **sweep artifact**:
//! `results/sweep.csv` plus a `results/sweep.csv.hash` sidecar naming the
//! content address of its inputs (every program and configuration
//! fingerprint and the unit-stage version). A CSV whose sidecar is
//! missing or names a different address is stale and recomputed — the old
//! row-count-only acceptance silently reused caches written by older code.
//!
//! The per-figure binaries (`fig3`, `fig4`, `fig5`, `fig7`, `fig8`,
//! `table1`, `table2`) reuse the artifact so each figure regenerates
//! instantly once the sweep has run. Reported numbers are ratios
//! (optimized / original), matching the paper's Inequations 10–12.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

use rtpf_cache::CacheConfig;
use rtpf_engine::{ArtifactKey, ArtifactStore, Engine, EngineConfig, Grid};
use rtpf_isa::Program;

pub use rtpf_engine::{parse_csv, to_csv, Gated, UnitResult, COLUMNS};

/// The engine profile every evaluation unit runs under.
///
/// The Mälardalen programs are single-path by design (fixed loop counts,
/// data-independent control flow), so the ACET traces run every loop to
/// its bound — `BranchBehavior::WorstLike` — with conditionals drawn from
/// the seeded RNG. This mirrors the paper's gem5 traces far better than
/// uniformly random loop trip counts would.
pub fn engine_for(config: CacheConfig) -> Engine {
    Engine::new(EngineConfig::evaluation(config))
}

/// Optimizes under the paper's three conditions (Condition 3 — no ACET or
/// energy regression — enforced by the engine's gate; see
/// [`Engine::gated_optimize`]).
pub fn optimize_with_condition3(program: &Program, config: CacheConfig) -> Gated {
    engine_for(config)
        .gated_optimize(program)
        .expect("suite programs optimize")
}

/// Runs one `(program, configuration)` unit through the engine.
pub fn run_unit(name: &str, program: &Program, k: &str, config: CacheConfig) -> UnitResult {
    let unit = engine_for(config)
        .unit(name, k, program)
        .expect("suite programs evaluate");
    (*unit).clone()
}

/// Location of the on-disk sweep artifact (`<name>.hash` sidecar beside
/// it).
pub fn cache_path() -> PathBuf {
    results_store()
        .disk_path("sweep.csv")
        .expect("store has a disk layer")
}

/// The artifact store rooted at the repository's `results/` directory.
pub fn results_store() -> ArtifactStore {
    ArtifactStore::with_disk(Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"))
}

/// Content address of the full 37 × 36 sweep: every program fingerprint ×
/// every evaluation-profile configuration fingerprint, plus the unit-stage
/// version. Any change to a benchmark, a Table 2 geometry, an
/// analysis/optimizer/simulation knob, or the unit algorithm itself moves
/// this key and invalidates the cached CSV.
pub fn sweep_artifact_key() -> ArtifactKey {
    let suite = rtpf_suite::catalog();
    let econfigs: Vec<EngineConfig> = CacheConfig::paper_configs()
        .iter()
        .map(|(_, c)| EngineConfig::evaluation(*c))
        .collect();
    rtpf_engine::sweep_key(
        suite
            .iter()
            .flat_map(|b| econfigs.iter().map(move |e| (&b.program, e))),
    )
}

/// Loads the sweep artifact from `store` iff it is fresh under `key` and
/// parses to the expected row count.
fn load_sweep(
    store: &ArtifactStore,
    key: ArtifactKey,
    expected_rows: usize,
) -> Option<Vec<UnitResult>> {
    let text = store.disk_get("sweep.csv", key)?;
    match parse_csv(&text) {
        Ok(rows) if rows.len() == expected_rows => Some(rows),
        Ok(rows) => {
            eprintln!(
                "sweep artifact has {} rows (expected {expected_rows}), recomputing",
                rows.len()
            );
            None
        }
        Err(e) => {
            debug_assert!(false, "corrupt sweep artifact: {e}");
            eprintln!("corrupt sweep artifact ({e}), recomputing");
            None
        }
    }
}

/// Runs (or loads) the full 37 × 36 sweep.
///
/// The cached CSV is accepted only when its `.hash` sidecar names the
/// current [`sweep_artifact_key`]; anything else — stale hash, missing
/// sidecar, parse failure, wrong row count — is discarded and the sweep
/// recomputed (and re-persisted under the current key).
pub fn sweep() -> Vec<UnitResult> {
    let store = results_store();
    let key = sweep_artifact_key();
    if let Some(rows) = load_sweep(&store, key, 37 * 36) {
        return rows;
    }
    let results = run_sweep();
    store
        .disk_put("sweep.csv", key, &to_csv(&results))
        .expect("persist sweep artifact");
    results
}

/// Computes the sweep from scratch on the engine's work-stealing grid.
///
/// Each unit runs in an ephemeral engine with a private store: no two
/// units share a `(program, configuration)` pair, so there is nothing to
/// reuse across them, and dropping each unit's intermediate artifacts
/// (analyses, optimize results, simulations) immediately keeps the
/// sweep's memory footprint flat.
pub fn run_sweep() -> Vec<UnitResult> {
    let suite = rtpf_suite::catalog();
    let configs = CacheConfig::paper_configs();
    let units: Vec<(usize, usize)> = (0..suite.len())
        .flat_map(|p| (0..configs.len()).map(move |c| (p, c)))
        .collect();

    let grid = Grid {
        workers: 0,
        progress_every: 100,
        label: "sweep",
    };
    let mut out: Vec<UnitResult> = grid.run(&units, |_, &(pi, ci)| {
        let b = &suite[pi];
        let (k, config) = &configs[ci];
        run_unit(b.name, &b.program, k, *config)
    });
    out.sort_by(|a, b| (&a.program, &a.k).cmp(&(&b.program, &b.k)));
    out
}

/// Paper Table 2 capacities, used as Figure 3/4/5 x-axes.
pub const CAPACITIES: [u32; 6] = [256, 512, 1024, 2048, 4096, 8192];

/// Mean of `f` over the rows with the given capacity.
pub fn mean_by_capacity(rows: &[UnitResult], capacity: u32, f: impl Fn(&UnitResult) -> f64) -> f64 {
    let vals: Vec<f64> = rows
        .iter()
        .filter(|r| r.capacity == capacity)
        .map(&f)
        .filter(|v| v.is_finite())
        .collect();
    if vals.is_empty() {
        f64::NAN
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_roundtrips_through_csv() {
        let b = rtpf_suite::by_name("bs").unwrap();
        let cfg = EngineConfig::geometry(2, 16, 256).unwrap();
        let r = run_unit("bs", &b.program, "k2", cfg);
        let text = to_csv(std::slice::from_ref(&r));
        let back = parse_csv(&text).expect("roundtrip parses");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].program, r.program);
        assert_eq!(back[0].wcet_orig, r.wcet_orig);
        assert_eq!(back[0].inserted, r.inserted);
        assert!((back[0].acet_orig - r.acet_orig).abs() < 1e-9);
        assert_eq!(back[0].half.is_some(), r.half.is_some());
    }

    #[test]
    fn unit_satisfies_theorem_one() {
        let b = rtpf_suite::by_name("fft1").unwrap();
        let cfg = EngineConfig::geometry(1, 16, 512).unwrap();
        let r = run_unit("fft1", &b.program, "k7", cfg);
        assert!(r.wcet_opt <= r.wcet_orig);
        assert!(r.wcet_ratio() <= 1.0);
    }

    #[test]
    fn mean_by_capacity_filters() {
        let b = rtpf_suite::by_name("bs").unwrap();
        let r1 = run_unit(
            "bs",
            &b.program,
            "k1",
            EngineConfig::geometry(1, 16, 256).unwrap(),
        );
        let rows = vec![r1];
        assert!(mean_by_capacity(&rows, 256, |r| r.wcet_ratio()).is_finite());
        assert!(mean_by_capacity(&rows, 512, |r| r.wcet_ratio()).is_nan());
    }

    #[test]
    fn stale_sweep_artifact_is_discarded() {
        // A payload persisted under a *different* key (e.g. written by an
        // older stage version or other configuration fingerprints) must be
        // treated as absent — this is the invalidation the old
        // row-count-only check missed.
        let dir = std::env::temp_dir().join(format!("rtpf-sweep-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::with_disk(&dir);
        let key = sweep_artifact_key();
        let stale = ArtifactKey::new(
            rtpf_engine::Stage::Sweep,
            &[rtpf_engine::Fingerprint(0xdead, 0xbeef)],
        );
        let b = rtpf_suite::by_name("bs").unwrap();
        let row = run_unit(
            "bs",
            &b.program,
            "k2",
            EngineConfig::geometry(2, 16, 256).unwrap(),
        );
        let payload = to_csv(std::slice::from_ref(&row));
        store
            .disk_put("sweep.csv", stale, &payload)
            .expect("writes");
        assert!(
            load_sweep(&store, key, 1).is_none(),
            "stale-hash artifact must be discarded"
        );
        // Re-persisted under the current key, the same payload is served.
        store.disk_put("sweep.csv", key, &payload).expect("writes");
        assert_eq!(load_sweep(&store, key, 1), Some(vec![row]));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
