//! The paper's evaluation harness (§5 / Supplement S.4).
//!
//! One *use case* is a `(program, cache configuration, technology)`
//! triple; the full evaluation covers 37 programs × 36 configurations × 2
//! technologies = **2664 use cases**. Because our timing model is
//! technology-independent (only energy scales with the node), the
//! expensive work — WCET analysis, prefetch optimization, and trace
//! simulation — runs once per `(program, configuration)` pair (1332
//! units) and both technologies' energies are derived from it.
//!
//! [`sweep`] runs everything in parallel and caches the per-unit metrics
//! as CSV under `results/sweep.csv`; the per-figure binaries (`fig3`,
//! `fig4`, `fig5`, `fig7`, `fig8`, `table1`, `table2`) reuse the cache so
//! each figure regenerates instantly once the sweep has run.
//!
//! Reported numbers are ratios (optimized / original), matching the
//! paper's Inequations 10–12.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rtpf_cache::CacheConfig;
use rtpf_core::{OptimizeParams, Optimizer};
use rtpf_energy::{EnergyModel, MemStats, Technology};
use rtpf_isa::Program;
use rtpf_sim::{BranchBehavior, SimConfig, SimResult, Simulator};

/// Metrics of one `(program, configuration)` unit (both technologies).
#[derive(Clone, Debug, PartialEq)]
pub struct UnitResult {
    /// Benchmark name (Table 1).
    pub program: String,
    /// Configuration id (`k1`..`k36`, Table 2).
    pub k: String,
    /// Cache geometry.
    pub assoc: u32,
    /// Block size in bytes.
    pub block: u32,
    /// Capacity in bytes.
    pub capacity: u32,
    /// Inserted prefetches.
    pub inserted: u32,
    /// `τ_w` of the original / optimized program.
    pub wcet_orig: u64,
    /// `τ_w` of the optimized program.
    pub wcet_opt: u64,
    /// Simulated ACET cycles (memory contribution), original / optimized.
    pub acet_orig: f64,
    /// Simulated ACET cycles of the optimized program.
    pub acet_opt: f64,
    /// Simulated miss rate of the original program.
    pub missrate_orig: f64,
    /// Simulated miss rate of the optimized program (prefetch-satisfied
    /// fetches count as hits, as in the paper's Figure 4).
    pub missrate_opt: f64,
    /// Executed instructions per run, original / optimized (Figure 8).
    pub instr_orig: f64,
    /// Executed instructions per run of the optimized program.
    pub instr_opt: f64,
    /// Memory-system energy (nJ), per technology, original then optimized.
    pub energy_orig: [f64; 2],
    /// Energy of the optimized program per technology.
    pub energy_opt: [f64; 2],
    /// Figure 5: optimized program run on capacity/2 — `(wcet, acet,
    /// energy45, energy32)`; `None` when the shrunken geometry is invalid.
    pub half: Option<[f64; 4]>,
    /// Figure 5: optimized program run on capacity/4.
    pub quarter: Option<[f64; 4]>,
}

impl UnitResult {
    /// Energy ratio optimized/original for a technology index
    /// (0 = 45 nm, 1 = 32 nm).
    pub fn energy_ratio(&self, tech: usize) -> f64 {
        self.energy_opt[tech] / self.energy_orig[tech]
    }

    /// ACET ratio optimized/original.
    pub fn acet_ratio(&self) -> f64 {
        self.acet_opt / self.acet_orig
    }

    /// WCET ratio optimized/original (Inequation 12).
    pub fn wcet_ratio(&self) -> f64 {
        self.wcet_opt as f64 / self.wcet_orig as f64
    }

    /// Executed-instruction ratio (Figure 8).
    pub fn instr_ratio(&self) -> f64 {
        self.instr_opt / self.instr_orig
    }
}

/// Simulation policy used throughout the evaluation.
///
/// The Mälardalen programs are single-path by design (fixed loop counts,
/// data-independent control flow), so the ACET traces run every loop to
/// its bound — [`BranchBehavior::WorstLike`] — with conditionals drawn
/// from the seeded RNG. This mirrors the paper's gem5 traces far better
/// than uniformly random loop trip counts would.
pub fn sim_config() -> SimConfig {
    SimConfig {
        behavior: BranchBehavior::WorstLike,
        seed: 0x5EED_2013,
        runs: 2,
        max_fetches: 4_000_000,
    }
}

/// Optimizer knobs used throughout the evaluation. The verification
/// budget adapts to program size: each one-at-a-time verification costs a
/// full WCET analysis, which is what dominates on the two giant generated
/// programs (`nsichneu`, `statemate`).
pub fn optimize_params(timing: rtpf_cache::MemTiming, instr_count: usize) -> OptimizeParams {
    let big = instr_count >= 1000;
    OptimizeParams {
        timing,
        max_rounds: if big { 8 } else { 20 },
        max_prefetches: 256,
        max_singles_per_round: if big { 12 } else { 48 },
        ..OptimizeParams::default()
    }
}

fn energy_of(model: &EnergyModel, stats: MemStats) -> f64 {
    model.energy_of(&stats).total_nj()
}

fn simulate(p: &Program, config: CacheConfig, timing: rtpf_cache::MemTiming) -> SimResult {
    Simulator::new(config, timing, sim_config())
        .run(p)
        .expect("suite programs simulate")
}

/// An optimization that passed the paper's Condition 3 gate (or the
/// original program if it did not).
pub struct Gated {
    /// The optimization result actually shipped.
    pub opt: rtpf_core::OptimizeResult,
    /// Simulation of the original program.
    pub sim_orig: SimResult,
    /// Simulation of the shipped program.
    pub sim_opt: SimResult,
}

/// Optimizes under the paper's three conditions: the optimizer enforces
/// Condition 1 (WCET non-increase) and Condition 2 (miss reduction on the
/// WCET path); this wrapper enforces **Condition 3** (the measured ACET —
/// and with it the static-dominated energy — must not increase), exactly
/// like the paper's outer iterative-improvement loop: when no improvement
/// is observed, the original (prefetch-equivalent) binary ships unchanged.
pub fn optimize_with_condition3(program: &Program, config: CacheConfig) -> Gated {
    let e45 = EnergyModel::new(&config, Technology::Nm45);
    let timing = e45.timing();
    let mut opt = Optimizer::new(config, optimize_params(timing, program.instr_count()))
        .run(program)
        .expect("suite programs optimize");
    let sim_orig = simulate(program, config, timing);
    let mut sim_opt = simulate(&opt.program, config, timing);
    let regressed = sim_opt.acet_cycles() > sim_orig.acet_cycles() * 1.001
        || energy_of(&e45, sim_opt.mean_stats()) > energy_of(&e45, sim_orig.mean_stats()) * 1.0005;
    if regressed {
        opt = Optimizer::new(
            config,
            OptimizeParams {
                max_rounds: 0,
                ..optimize_params(timing, program.instr_count())
            },
        )
        .run(program)
        .expect("no-op optimization succeeds");
        sim_opt = sim_orig;
    }
    Gated {
        opt,
        sim_orig,
        sim_opt,
    }
}

/// Runs one `(program, configuration)` unit.
pub fn run_unit(name: &str, program: &Program, k: &str, config: CacheConfig) -> UnitResult {
    let model45 = EnergyModel::new(&config, Technology::Nm45);
    let model32 = EnergyModel::new(&config, Technology::Nm32);
    let Gated {
        opt,
        sim_orig,
        sim_opt,
    } = optimize_with_condition3(program, config);

    let e_orig = [
        energy_of(&model45, sim_orig.mean_stats()),
        energy_of(&model32, sim_orig.mean_stats()),
    ];
    let e_opt = [
        energy_of(&model45, sim_opt.mean_stats()),
        energy_of(&model32, sim_opt.mean_stats()),
    ];

    // Figure 5: the optimized binary on half / quarter capacity.
    let shrunk = |divisor: u32| -> Option<[f64; 4]> {
        let small = config.shrink(divisor).ok()?;
        let m45 = EnergyModel::new(&small, Technology::Nm45);
        let m32 = EnergyModel::new(&small, Technology::Nm32);
        let t = m45.timing();
        let wcet = rtpf_wcet::WcetAnalysis::analyze_with_layout(
            &opt.program,
            opt.analysis_after.layout().clone(),
            &small,
            &t,
        )
        .ok()?
        .tau_w();
        let sim = Simulator::new(small, t, sim_config()).run(&opt.program).ok()?;
        Some([
            wcet as f64,
            sim.acet_cycles(),
            energy_of(&m45, sim.mean_stats()),
            energy_of(&m32, sim.mean_stats()),
        ])
    };

    UnitResult {
        program: name.to_string(),
        k: k.to_string(),
        assoc: config.assoc(),
        block: config.block_bytes(),
        capacity: config.capacity_bytes(),
        inserted: opt.report.inserted,
        wcet_orig: opt.report.wcet_before,
        wcet_opt: opt.report.wcet_after,
        acet_orig: sim_orig.acet_cycles(),
        acet_opt: sim_opt.acet_cycles(),
        missrate_orig: sim_orig.miss_rate(),
        missrate_opt: sim_opt.miss_rate(),
        instr_orig: sim_orig.mean_instr_executed(),
        instr_opt: sim_opt.mean_instr_executed(),
        energy_orig: e_orig,
        energy_opt: e_opt,
        half: shrunk(2),
        quarter: shrunk(4),
    }
}

/// Location of the sweep cache.
pub fn cache_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/sweep.csv")
}

/// Runs (or loads) the full 37 × 36 sweep.
///
/// # Panics
///
/// Panics if the cache file exists but cannot be parsed, or a worker
/// thread panics.
pub fn sweep() -> Vec<UnitResult> {
    if let Ok(text) = fs::read_to_string(cache_path()) {
        let rows = parse_csv(&text);
        if rows.len() == 37 * 36 {
            return rows;
        }
        eprintln!(
            "cache has {} rows (expected {}), recomputing",
            rows.len(),
            37 * 36
        );
    }
    let results = run_sweep();
    let _ = fs::create_dir_all(cache_path().parent().expect("has parent"));
    let mut f = fs::File::create(cache_path()).expect("create cache");
    f.write_all(to_csv(&results).as_bytes()).expect("write cache");
    results
}

/// Computes the sweep from scratch, in parallel.
pub fn run_sweep() -> Vec<UnitResult> {
    let suite = rtpf_suite::catalog();
    let configs = CacheConfig::paper_configs();
    let units: Vec<(usize, usize)> = (0..suite.len())
        .flat_map(|p| (0..configs.len()).map(move |c| (p, c)))
        .collect();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let results: Mutex<Vec<UnitResult>> = Mutex::new(Vec::with_capacity(units.len()));
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= units.len() {
                    break;
                }
                let (pi, ci) = units[i];
                let b = &suite[pi];
                let (k, config) = &configs[ci];
                let r = run_unit(b.name, &b.program, k, *config);
                results.lock().expect("no poisoned worker").push(r);
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                if d % 100 == 0 {
                    eprintln!("sweep: {d}/{} units", units.len());
                }
            });
        }
    });

    let mut out = results.into_inner().expect("workers joined");
    out.sort_by(|a, b| (&a.program, &a.k).cmp(&(&b.program, &b.k)));
    out
}

/// Column order of the CSV cache.
const COLUMNS: &str = "program,k,assoc,block,capacity,inserted,wcet_orig,wcet_opt,\
acet_orig,acet_opt,missrate_orig,missrate_opt,instr_orig,instr_opt,\
e45_orig,e45_opt,e32_orig,e32_opt,\
half_wcet,half_acet,half_e45,half_e32,quarter_wcet,quarter_acet,quarter_e45,quarter_e32";

/// Serializes results (stable column order, `nan` for absent Figure-5
/// entries).
pub fn to_csv(rows: &[UnitResult]) -> String {
    let mut s = String::from(COLUMNS);
    s.push('\n');
    for r in rows {
        let opt4 = |o: &Option<[f64; 4]>| -> String {
            match o {
                Some(v) => format!("{},{},{},{}", v[0], v[1], v[2], v[3]),
                None => "nan,nan,nan,nan".to_string(),
            }
        };
        s.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.program,
            r.k,
            r.assoc,
            r.block,
            r.capacity,
            r.inserted,
            r.wcet_orig,
            r.wcet_opt,
            r.acet_orig,
            r.acet_opt,
            r.missrate_orig,
            r.missrate_opt,
            r.instr_orig,
            r.instr_opt,
            r.energy_orig[0],
            r.energy_opt[0],
            r.energy_orig[1],
            r.energy_opt[1],
            opt4(&r.half),
            opt4(&r.quarter),
        ));
    }
    s
}

/// Parses the CSV cache back.
///
/// # Panics
///
/// Panics on malformed rows (delete `results/sweep.csv` to recompute).
pub fn parse_csv(text: &str) -> Vec<UnitResult> {
    let mut rows = Vec::new();
    for line in text.lines().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        assert_eq!(f.len(), 26, "malformed cache row: {line}");
        let opt4 = |i: usize| -> Option<[f64; 4]> {
            let v: Vec<f64> = (i..i + 4).map(|j| f[j].parse().expect("float")).collect();
            if v[0].is_nan() {
                None
            } else {
                Some([v[0], v[1], v[2], v[3]])
            }
        };
        rows.push(UnitResult {
            program: f[0].to_string(),
            k: f[1].to_string(),
            assoc: f[2].parse().expect("assoc"),
            block: f[3].parse().expect("block"),
            capacity: f[4].parse().expect("capacity"),
            inserted: f[5].parse().expect("inserted"),
            wcet_orig: f[6].parse().expect("wcet"),
            wcet_opt: f[7].parse().expect("wcet"),
            acet_orig: f[8].parse().expect("acet"),
            acet_opt: f[9].parse().expect("acet"),
            missrate_orig: f[10].parse().expect("missrate"),
            missrate_opt: f[11].parse().expect("missrate"),
            instr_orig: f[12].parse().expect("instr"),
            instr_opt: f[13].parse().expect("instr"),
            energy_orig: [f[14].parse().expect("e"), f[16].parse().expect("e")],
            energy_opt: [f[15].parse().expect("e"), f[17].parse().expect("e")],
            half: opt4(18),
            quarter: opt4(22),
        });
    }
    rows
}

/// Paper Table 2 capacities, used as Figure 3/4/5 x-axes.
pub const CAPACITIES: [u32; 6] = [256, 512, 1024, 2048, 4096, 8192];

/// Mean of `f` over the rows with the given capacity.
pub fn mean_by_capacity(rows: &[UnitResult], capacity: u32, f: impl Fn(&UnitResult) -> f64) -> f64 {
    let vals: Vec<f64> = rows
        .iter()
        .filter(|r| r.capacity == capacity)
        .map(&f)
        .filter(|v| v.is_finite())
        .collect();
    if vals.is_empty() {
        f64::NAN
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_preserves_rows() {
        let b = rtpf_suite::by_name("bs").unwrap();
        let cfg = CacheConfig::new(2, 16, 256).unwrap();
        let r = run_unit("bs", &b.program, "k2", cfg);
        let text = to_csv(std::slice::from_ref(&r));
        let back = parse_csv(&text);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].program, r.program);
        assert_eq!(back[0].wcet_orig, r.wcet_orig);
        assert_eq!(back[0].inserted, r.inserted);
        assert!((back[0].acet_orig - r.acet_orig).abs() < 1e-9);
        assert_eq!(back[0].half.is_some(), r.half.is_some());
    }

    #[test]
    fn unit_satisfies_theorem_one() {
        let b = rtpf_suite::by_name("fft1").unwrap();
        let cfg = CacheConfig::new(1, 16, 512).unwrap();
        let r = run_unit("fft1", &b.program, "k7", cfg);
        assert!(r.wcet_opt <= r.wcet_orig);
        assert!(r.wcet_ratio() <= 1.0);
    }

    #[test]
    fn mean_by_capacity_filters() {
        let b = rtpf_suite::by_name("bs").unwrap();
        let r1 = run_unit("bs", &b.program, "k1", CacheConfig::new(1, 16, 256).unwrap());
        let rows = vec![r1];
        assert!(mean_by_capacity(&rows, 256, |r| r.wcet_ratio()).is_finite());
        assert!(mean_by_capacity(&rows, 512, |r| r.wcet_ratio()).is_nan());
    }
}
