//! The paper's evaluation harness (§5 / Supplement S.4).
//!
//! One *use case* is a `(program, cache configuration, technology)`
//! triple; the full evaluation covers 37 programs × 36 configurations × 2
//! technologies = **2664 use cases**. Because our timing model is
//! technology-independent (only energy scales with the node), the
//! expensive work — WCET analysis, prefetch optimization, and trace
//! simulation — runs once per `(program, configuration)` pair (1332
//! units) and both technologies' energies are derived from it.
//!
//! All the actual analysis now lives in the shared [`rtpf_engine`]
//! pipeline; this crate is the harness layer — it picks the
//! [`EngineConfig::evaluation`] profile, drives the 37 × 36 grid, and
//! persists the result as the on-disk **sweep artifact**:
//! `results/sweep.csv` plus a `results/sweep.csv.hash` sidecar naming the
//! content address of its inputs (every program and configuration
//! fingerprint and the unit-stage version). A CSV whose sidecar is
//! missing or names a different address is stale and recomputed — the old
//! row-count-only acceptance silently reused caches written by older code.
//!
//! The per-figure binaries (`fig3`, `fig4`, `fig5`, `fig7`, `fig8`,
//! `table1`, `table2`) reuse the artifact so each figure regenerates
//! instantly once the sweep has run. Reported numbers are ratios
//! (optimized / original), matching the paper's Inequations 10–12.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

use rtpf_cache::{CacheConfig, ReplacementPolicy};
use rtpf_engine::{ArtifactKey, ArtifactStore, Engine, EngineConfig, Grid};
use rtpf_isa::Program;

pub use rtpf_engine::{parse_csv, to_csv, Gated, UnitResult, COLUMNS};

/// The engine profile every evaluation unit runs under.
///
/// The Mälardalen programs are single-path by design (fixed loop counts,
/// data-independent control flow), so the ACET traces run every loop to
/// its bound — `BranchBehavior::WorstLike` — with conditionals drawn from
/// the seeded RNG. This mirrors the paper's gem5 traces far better than
/// uniformly random loop trip counts would.
pub fn engine_for(config: CacheConfig) -> Engine {
    // One analysis thread per engine: the sweep grid already runs one
    // worker per core ([`Grid`]), so nested fan-out would only oversubscribe.
    engine_with_threads(config, 1)
}

/// [`engine_for`] with an explicit analysis worker-thread count (`0` = one
/// per core). Outputs are byte-identical at any count (DESIGN.md §13);
/// the determinism tests and benches use this to pit thread counts against
/// each other.
pub fn engine_with_threads(config: CacheConfig, threads: usize) -> Engine {
    Engine::new(EngineConfig::evaluation(config).with_threads(threads))
}

/// Optimizes under the paper's three conditions (Condition 3 — no ACET or
/// energy regression — enforced by the engine's gate; see
/// [`Engine::gated_optimize`]).
pub fn optimize_with_condition3(program: &Program, config: CacheConfig) -> Gated {
    engine_for(config)
        .gated_optimize(program)
        .expect("suite programs optimize")
}

/// Runs one `(program, configuration)` unit through the engine.
pub fn run_unit(name: &str, program: &Program, k: &str, config: CacheConfig) -> UnitResult {
    run_unit_with_threads(name, program, k, config, 1)
}

/// [`run_unit`] with an explicit analysis worker-thread count.
pub fn run_unit_with_threads(
    name: &str,
    program: &Program,
    k: &str,
    config: CacheConfig,
    threads: usize,
) -> UnitResult {
    let unit = engine_with_threads(config, threads)
        .unit(name, k, program)
        .expect("suite programs evaluate");
    (*unit).clone()
}

/// On-disk name of the sweep artifact for `policy`. The historical LRU
/// sweep keeps its original name (`sweep.csv`) so every pre-policy
/// consumer — and the frozen golden-slice test — keeps reading the exact
/// same bytes; other policies get `sweep-<policy>.csv` beside it.
pub fn sweep_artifact_name(policy: ReplacementPolicy) -> String {
    match policy {
        ReplacementPolicy::Lru => "sweep.csv".to_string(),
        p => format!("sweep-{p}.csv"),
    }
}

/// Location of the on-disk sweep artifact (`<name>.hash` sidecar beside
/// it).
pub fn cache_path() -> PathBuf {
    cache_path_for(ReplacementPolicy::Lru)
}

/// [`cache_path`], for any replacement policy.
pub fn cache_path_for(policy: ReplacementPolicy) -> PathBuf {
    results_store()
        .disk_path(&sweep_artifact_name(policy))
        .expect("store has a disk layer")
}

/// The artifact store rooted at the repository's `results/` directory.
pub fn results_store() -> ArtifactStore {
    ArtifactStore::with_disk(Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"))
}

/// The Table 2 configurations under `policy` (the paper's grid is pure
/// geometry; the policy is orthogonal and every Table 2 associativity is
/// representable under every supported policy).
pub fn paper_configs_for(policy: ReplacementPolicy) -> Vec<(String, CacheConfig)> {
    CacheConfig::paper_configs()
        .into_iter()
        .map(|(k, c)| {
            let c = c
                .with_policy(policy)
                .expect("Table 2 associativities support every policy");
            (k, c)
        })
        .collect()
}

/// Content address of the full 37 × 36 sweep: every program fingerprint ×
/// every evaluation-profile configuration fingerprint, plus the unit-stage
/// version. Any change to a benchmark, a Table 2 geometry, an
/// analysis/optimizer/simulation knob, the replacement policy, or the
/// unit algorithm itself moves this key and invalidates the cached CSV.
pub fn sweep_artifact_key() -> ArtifactKey {
    sweep_artifact_key_for(ReplacementPolicy::Lru)
}

/// [`sweep_artifact_key`], for any replacement policy. The policy enters
/// every configuration fingerprint (see `EngineConfig`), so the three
/// per-policy sweep artifacts can never serve each other's requests even
/// if their file names were confused.
pub fn sweep_artifact_key_for(policy: ReplacementPolicy) -> ArtifactKey {
    let suite = rtpf_suite::catalog();
    let econfigs: Vec<EngineConfig> = paper_configs_for(policy)
        .into_iter()
        .map(|(_, c)| EngineConfig::evaluation(c))
        .collect();
    rtpf_engine::sweep_key(
        suite
            .iter()
            .flat_map(|b| econfigs.iter().map(move |e| (&b.program, e))),
    )
}

/// Loads the named sweep artifact from `store` iff it is fresh under
/// `key` and parses to the expected row count.
fn load_sweep_named(
    store: &ArtifactStore,
    name: &str,
    key: ArtifactKey,
    expected_rows: usize,
) -> Option<Vec<UnitResult>> {
    let text = store.disk_get(name, key)?;
    match parse_csv(&text) {
        Ok(rows) if rows.len() == expected_rows => Some(rows),
        Ok(rows) => {
            eprintln!(
                "sweep artifact has {} rows (expected {expected_rows}), recomputing",
                rows.len()
            );
            None
        }
        Err(e) => {
            debug_assert!(false, "corrupt sweep artifact: {e}");
            eprintln!("corrupt sweep artifact ({e}), recomputing");
            None
        }
    }
}

/// Runs (or loads) the full 37 × 36 sweep under LRU, the paper's policy.
///
/// The cached CSV is accepted only when its `.hash` sidecar names the
/// current [`sweep_artifact_key`]; anything else — stale hash, missing
/// sidecar, parse failure, wrong row count — is discarded and the sweep
/// recomputed (and re-persisted under the current key).
pub fn sweep() -> Vec<UnitResult> {
    sweep_for(ReplacementPolicy::Lru)
}

/// [`sweep`], for any replacement policy. Each policy persists to its own
/// artifact (see [`sweep_artifact_name`]) under its own content address.
pub fn sweep_for(policy: ReplacementPolicy) -> Vec<UnitResult> {
    let store = results_store();
    let key = sweep_artifact_key_for(policy);
    let name = sweep_artifact_name(policy);
    if let Some(rows) = load_sweep_named(&store, &name, key, 37 * 36) {
        return rows;
    }
    let results = run_sweep_for(policy);
    store
        .disk_put(&name, key, &to_csv(&results))
        .expect("persist sweep artifact");
    results
}

/// Worker groups the evaluation grids run under: one shard per four
/// workers, so small machines (including single-core CI) collapse to the
/// classic single-counter mode and wide ones split into independent
/// groups.
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().div_ceil(4))
}

/// Computes the LRU sweep from scratch on the engine's work-stealing
/// grid.
///
/// Each unit runs in an ephemeral engine with a private store: no two
/// units share a `(program, configuration)` pair, so there is nothing to
/// reuse across them, and dropping each unit's intermediate artifacts
/// (analyses, optimize results, simulations) immediately keeps the
/// sweep's memory footprint flat.
pub fn run_sweep() -> Vec<UnitResult> {
    run_sweep_for(ReplacementPolicy::Lru)
}

/// [`run_sweep`], for any replacement policy. The grid runs sharded (one
/// worker group per [`default_shards`] slice), so wide machines do not
/// convoy on a single claim counter while sharing the results store.
pub fn run_sweep_for(policy: ReplacementPolicy) -> Vec<UnitResult> {
    let suite = rtpf_suite::catalog();
    let configs = paper_configs_for(policy);
    let units: Vec<(usize, usize)> = (0..suite.len())
        .flat_map(|p| (0..configs.len()).map(move |c| (p, c)))
        .collect();

    let grid = Grid {
        workers: 0,
        progress_every: 100,
        label: match policy {
            ReplacementPolicy::Lru => "sweep",
            ReplacementPolicy::Fifo => "sweep[fifo]",
            ReplacementPolicy::Plru => "sweep[plru]",
        },
        shards: default_shards(),
    };
    let mut out: Vec<UnitResult> = grid.run(&units, |_, &(pi, ci)| {
        let b = &suite[pi];
        let (k, config) = &configs[ci];
        run_unit(b.name, &b.program, k, *config)
    });
    out.sort_by(|a, b| (&a.program, &a.k).cmp(&(&b.program, &b.k)));
    out
}

/// Fixed L1 of the L2-capacity sweep axis: the mid-grid Table 2 geometry
/// `(2, 16, 512)`, small enough that every swept L2 changes the DRAM
/// traffic it sees.
pub fn l2_sweep_l1() -> CacheConfig {
    CacheConfig::new(2, 16, 512).expect("Table 2 geometry")
}

/// L2 capacities swept behind [`l2_sweep_l1`] (8-way, 16-byte blocks,
/// LRU). A no-L2 baseline row rides along so each figure can report the
/// marginal effect of the second level directly.
pub const L2_CAPACITIES: [u32; 5] = [2048, 4096, 8192, 16384, 32768];

/// The points of the L2 sweep: the L1-only baseline (`l2none`) followed
/// by one two-level profile per [`L2_CAPACITIES`] entry (`l2c<capacity>`).
pub fn l2_sweep_points() -> Vec<(String, EngineConfig)> {
    let l1 = l2_sweep_l1();
    let mut points = vec![("l2none".to_string(), EngineConfig::evaluation(l1))];
    for cap in L2_CAPACITIES {
        let l2 = CacheConfig::new(8, 16, cap).expect("valid L2 geometry");
        points.push((
            format!("l2c{cap}"),
            EngineConfig::evaluation(l1)
                .with_l2(l2)
                .expect("capacities above the L1 are monotone"),
        ));
    }
    points
}

/// On-disk name of the L2 sweep artifact.
pub const L2_SWEEP_NAME: &str = "sweep-l2.csv";

/// Location of the on-disk L2 sweep artifact (`.hash` sidecar beside it).
pub fn l2_cache_path() -> PathBuf {
    results_store()
        .disk_path(L2_SWEEP_NAME)
        .expect("store has a disk layer")
}

/// Content address of the L2 sweep: every program fingerprint × every
/// sweep-point configuration fingerprint (the L2 geometry/policy enters
/// each configuration fingerprint), plus the unit-stage version.
pub fn l2_sweep_artifact_key() -> ArtifactKey {
    let suite = rtpf_suite::catalog();
    let econfigs: Vec<EngineConfig> = l2_sweep_points().into_iter().map(|(_, e)| e).collect();
    rtpf_engine::sweep_key(
        suite
            .iter()
            .flat_map(|b| econfigs.iter().map(move |e| (&b.program, e))),
    )
}

/// One L2 sweep row: the sweep point's L2 (None = the baseline) plus the
/// evaluated unit.
pub type L2Row = (Option<CacheConfig>, UnitResult);

/// Serializes L2 sweep rows. The layout is the [`COLUMNS`] unit schema
/// with three trailing columns — `l2_assoc,l2_block,l2_capacity`, all `0`
/// on the baseline row — so `results/sweep.csv` keeps its frozen 26-column
/// shape and the L2 axis lives entirely in its own artifact.
pub fn l2_to_csv(rows: &[L2Row]) -> String {
    let mut s = String::new();
    s.push_str(COLUMNS);
    s.push_str(",l2_assoc,l2_block,l2_capacity\n");
    for (l2, row) in rows {
        let unit = to_csv(std::slice::from_ref(row));
        let line = unit.lines().nth(1).expect("one data row");
        let (a, b, c) = match l2 {
            Some(l2) => (l2.assoc(), l2.block_bytes(), l2.capacity_bytes()),
            None => (0, 0, 0),
        };
        use std::fmt::Write as _;
        let _ = writeln!(s, "{line},{a},{b},{c}");
    }
    s
}

/// Parses the L2 sweep serialization back.
///
/// # Errors
///
/// Returns a description of the first malformed row; callers treat that
/// as a missing artifact and recompute.
pub fn parse_l2_csv(text: &str) -> Result<Vec<L2Row>, String> {
    let mut rows = Vec::new();
    for (ln, line) in text.lines().enumerate().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 4 {
            return Err(format!("line {ln}: too few fields"));
        }
        let (unit_fields, l2_fields) = fields.split_at(fields.len() - 3);
        let unit_text = format!("{COLUMNS}\n{}\n", unit_fields.join(","));
        let unit = parse_csv(&unit_text)?
            .pop()
            .ok_or_else(|| format!("line {ln}: no unit row"))?;
        let nums: Vec<u32> = l2_fields
            .iter()
            .map(|f| {
                f.parse()
                    .map_err(|_| format!("line {ln}: bad l2 field {f}"))
            })
            .collect::<Result<_, _>>()?;
        let l2 = match (nums[0], nums[1], nums[2]) {
            (0, 0, 0) => None,
            (a, b, c) => Some(
                CacheConfig::new(a, b, c)
                    .map_err(|e| format!("line {ln}: bad l2 geometry: {e}"))?,
            ),
        };
        rows.push((l2, unit));
    }
    Ok(rows)
}

/// Runs (or loads) the L2-capacity sweep: all 37 programs × the
/// [`l2_sweep_points`] axis, persisted as `results/sweep-l2.csv` under
/// its content address.
pub fn l2_sweep() -> Vec<L2Row> {
    let store = results_store();
    let key = l2_sweep_artifact_key();
    let expected = rtpf_suite::catalog().len() * l2_sweep_points().len();
    if let Some(text) = store.disk_get(L2_SWEEP_NAME, key) {
        match parse_l2_csv(&text) {
            Ok(rows) if rows.len() == expected => return rows,
            Ok(rows) => eprintln!(
                "L2 sweep artifact has {} rows (expected {expected}), recomputing",
                rows.len()
            ),
            Err(e) => eprintln!("corrupt L2 sweep artifact ({e}), recomputing"),
        }
    }
    let rows = run_l2_sweep();
    store
        .disk_put(L2_SWEEP_NAME, key, &l2_to_csv(&rows))
        .expect("persist L2 sweep artifact");
    rows
}

/// Computes the L2 sweep from scratch on the engine's work-stealing grid.
pub fn run_l2_sweep() -> Vec<L2Row> {
    let suite = rtpf_suite::catalog();
    let points = l2_sweep_points();
    let units: Vec<(usize, usize)> = (0..suite.len())
        .flat_map(|p| (0..points.len()).map(move |c| (p, c)))
        .collect();
    let grid = Grid {
        workers: 0,
        progress_every: 50,
        label: "sweep[l2]",
        shards: default_shards(),
    };
    let mut out: Vec<L2Row> = grid.run(&units, |_, &(pi, ci)| {
        let b = &suite[pi];
        let (k, econfig) = &points[ci];
        let unit = Engine::new(econfig.clone().with_threads(1))
            .unit(b.name, k, &b.program)
            .expect("suite programs evaluate");
        (econfig.l2().copied(), (*unit).clone())
    });
    out.sort_by(|a, b| (&a.1.program, &a.1.k).cmp(&(&b.1.program, &b.1.k)));
    out
}

/// Per-policy precision of the abstract classifier, as measured by the
/// soundness audit over the full suite × Table 2 grid.
///
/// `mean_precision` for LRU is the analog of the repository's headline
/// ≈0.98 figure; FIFO and PLRU run through the competitiveness-based
/// reductions (DESIGN.md §10) and are expected to score lower — sound
/// but less precise. `unsound` must be zero for every policy: a nonzero
/// count means the abstract classifier promised an always-hit (or
/// always-miss) the concrete policy contradicts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolicyPrecision {
    /// The replacement policy audited.
    pub policy: ReplacementPolicy,
    /// Analyses audited (programs × configurations).
    pub analyses: u32,
    /// RTPF020/RTPF022/RTPF040/RTPF042 findings — genuine unsoundness,
    /// must be 0.
    pub unsound: u64,
    /// RTPF021/RTPF041 findings — unclassified references with a single
    /// concrete outcome (pure precision loss).
    pub precision_gaps: u64,
    /// References upgraded by the exact FIFO/PLRU refinement stage across
    /// all analyses (always 0 for LRU).
    pub refined: u64,
    /// Mean precision of the *cheap* competitiveness-based classification
    /// alone, refinement discounted.
    pub mean_precision_cheap: f64,
    /// Mean precision score of the shipped (refined) classification over
    /// all analyses (1.0 = every observed reference classified exactly).
    pub mean_precision: f64,
}

/// Audits every `(program, configuration)` unit under `policy` on the
/// work-stealing grid and aggregates the per-analysis precision scores.
pub fn measure_precision(policy: ReplacementPolicy) -> PolicyPrecision {
    use rtpf_audit::{DiagnosticSink, SeverityConfig, SoundnessOptions};

    let suite = rtpf_suite::catalog();
    let configs = paper_configs_for(policy);
    let units: Vec<(usize, usize)> = (0..suite.len())
        .flat_map(|p| (0..configs.len()).map(move |c| (p, c)))
        .collect();
    let grid = Grid {
        workers: 0,
        progress_every: 200,
        label: match policy {
            ReplacementPolicy::Lru => "precision[lru]",
            ReplacementPolicy::Fifo => "precision[fifo]",
            ReplacementPolicy::Plru => "precision[plru]",
        },
        shards: default_shards(),
    };
    let sums = grid.run(&units, |_, &(pi, ci)| {
        let b = &suite[pi];
        let (_, config) = &configs[ci];
        let engine = engine_for(*config);
        let mut sink = DiagnosticSink::new(SeverityConfig::new());
        engine
            .audit_soundness(&b.program, &mut sink, &SoundnessOptions::default(), false)
            .expect("suite programs analyse")
    });
    let analyses = u32::try_from(sums.len()).expect("grid fits in u32");
    PolicyPrecision {
        policy,
        analyses,
        unsound: sums.iter().map(|s| s.unsound as u64).sum(),
        precision_gaps: sums.iter().map(|s| s.precision_gaps as u64).sum(),
        refined: sums.iter().map(|s| s.refined as u64).sum(),
        mean_precision_cheap: sums.iter().map(|s| s.cheap_precision_score).sum::<f64>()
            / f64::from(analyses.max(1)),
        mean_precision: sums.iter().map(|s| s.precision_score).sum::<f64>()
            / f64::from(analyses.max(1)),
    }
}

/// Renders per-policy precision rows as the `results/precision.csv`
/// artifact payload.
pub fn precision_to_csv(rows: &[PolicyPrecision]) -> String {
    let mut s = String::from(
        "policy,analyses,unsound,precision_gaps,refined,mean_precision_cheap,mean_precision\n",
    );
    for r in rows {
        use std::fmt::Write as _;
        let _ = writeln!(
            s,
            "{},{},{},{},{},{:.6},{:.6}",
            r.policy,
            r.analyses,
            r.unsound,
            r.precision_gaps,
            r.refined,
            r.mean_precision_cheap,
            r.mean_precision
        );
    }
    s
}

/// The committed precision record per policy (the refined
/// `mean_precision` column of `results/precision.csv` at the time the
/// record was last raised). `precision --check` fails when a measured
/// score drops below its record — the CI ratchet that keeps refinement
/// regressions out.
pub const PRECISION_RECORD: [(ReplacementPolicy, f64); 3] = [
    (ReplacementPolicy::Lru, 0.982),
    (ReplacementPolicy::Fifo, 0.981),
    (ReplacementPolicy::Plru, 0.981),
];

/// The committed record for one policy.
pub fn precision_record(policy: ReplacementPolicy) -> f64 {
    PRECISION_RECORD
        .iter()
        .find(|(p, _)| *p == policy)
        .map(|&(_, v)| v)
        .expect("every policy has a record")
}

/// Content address of the precision artifact: the union of every
/// per-policy sweep input, so any change that could move a score
/// invalidates the CSV.
pub fn precision_artifact_key() -> ArtifactKey {
    let suite = rtpf_suite::catalog();
    let econfigs: Vec<EngineConfig> = ReplacementPolicy::ALL
        .into_iter()
        .flat_map(paper_configs_for)
        .map(|(_, c)| EngineConfig::evaluation(c))
        .collect();
    rtpf_engine::sweep_key(
        suite
            .iter()
            .flat_map(|b| econfigs.iter().map(move |e| (&b.program, e))),
    )
}

/// Paper Table 2 capacities, used as Figure 3/4/5 x-axes.
pub const CAPACITIES: [u32; 6] = [256, 512, 1024, 2048, 4096, 8192];

/// Mean of `f` over the rows with the given capacity.
pub fn mean_by_capacity(rows: &[UnitResult], capacity: u32, f: impl Fn(&UnitResult) -> f64) -> f64 {
    let vals: Vec<f64> = rows
        .iter()
        .filter(|r| r.capacity == capacity)
        .map(&f)
        .filter(|v| v.is_finite())
        .collect();
    if vals.is_empty() {
        f64::NAN
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_roundtrips_through_csv() {
        let b = rtpf_suite::by_name("bs").unwrap();
        let cfg = EngineConfig::geometry(2, 16, 256).unwrap();
        let r = run_unit("bs", &b.program, "k2", cfg);
        let text = to_csv(std::slice::from_ref(&r));
        let back = parse_csv(&text).expect("roundtrip parses");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].program, r.program);
        assert_eq!(back[0].wcet_orig, r.wcet_orig);
        assert_eq!(back[0].inserted, r.inserted);
        assert!((back[0].acet_orig - r.acet_orig).abs() < 1e-9);
        assert_eq!(back[0].half.is_some(), r.half.is_some());
    }

    #[test]
    fn unit_satisfies_theorem_one() {
        let b = rtpf_suite::by_name("fft1").unwrap();
        let cfg = EngineConfig::geometry(1, 16, 512).unwrap();
        let r = run_unit("fft1", &b.program, "k7", cfg);
        assert!(r.wcet_opt <= r.wcet_orig);
        assert!(r.wcet_ratio() <= 1.0);
    }

    #[test]
    fn mean_by_capacity_filters() {
        let b = rtpf_suite::by_name("bs").unwrap();
        let r1 = run_unit(
            "bs",
            &b.program,
            "k1",
            EngineConfig::geometry(1, 16, 256).unwrap(),
        );
        let rows = vec![r1];
        assert!(mean_by_capacity(&rows, 256, |r| r.wcet_ratio()).is_finite());
        assert!(mean_by_capacity(&rows, 512, |r| r.wcet_ratio()).is_nan());
    }

    #[test]
    fn l2_rows_roundtrip_through_csv() {
        let b = rtpf_suite::by_name("bs").unwrap();
        let points = l2_sweep_points();
        assert_eq!(points.len(), 1 + L2_CAPACITIES.len());
        let rows: Vec<L2Row> = points
            .iter()
            .take(2)
            .map(|(k, econfig)| {
                let unit = Engine::new(econfig.clone().with_threads(1))
                    .unit("bs", k, &b.program)
                    .expect("evaluates");
                (econfig.l2().copied(), (*unit).clone())
            })
            .collect();
        assert!(rows[0].0.is_none(), "first point is the L1-only baseline");
        assert!(rows[1].0.is_some());
        let text = l2_to_csv(&rows);
        assert!(text.starts_with(COLUMNS));
        assert!(text
            .lines()
            .next()
            .unwrap()
            .ends_with("l2_assoc,l2_block,l2_capacity"));
        let back = parse_l2_csv(&text).expect("roundtrip parses");
        assert_eq!(back, rows);
    }

    #[test]
    fn l2_sweep_key_differs_from_every_policy_sweep_key() {
        let l2 = l2_sweep_artifact_key();
        for p in ReplacementPolicy::ALL {
            assert_ne!(l2, sweep_artifact_key_for(p));
        }
    }

    #[test]
    fn per_policy_sweep_artifacts_are_fully_separated() {
        // Distinct file names, so no policy overwrites another's CSV…
        let names: Vec<String> = ReplacementPolicy::ALL
            .into_iter()
            .map(sweep_artifact_name)
            .collect();
        assert_eq!(names, ["sweep.csv", "sweep-fifo.csv", "sweep-plru.csv"]);
        // …and distinct content addresses, so even a renamed/copied CSV
        // from another policy is rejected as stale.
        let keys: Vec<ArtifactKey> = ReplacementPolicy::ALL
            .into_iter()
            .map(sweep_artifact_key_for)
            .collect();
        for i in 0..keys.len() {
            for j in 0..i {
                assert_ne!(keys[i], keys[j], "policies {j} and {i} share a sweep key");
            }
        }
        // The LRU wrappers are the policy-generic forms at LRU.
        assert_eq!(
            sweep_artifact_key(),
            sweep_artifact_key_for(ReplacementPolicy::Lru)
        );
        assert_eq!(cache_path(), cache_path_for(ReplacementPolicy::Lru));
    }

    #[test]
    fn a_sweep_csv_copied_across_policies_is_rejected() {
        // Concretely exercise the cross-policy isolation: persist a row
        // under the FIFO key, then ask for it under the PLRU key (same
        // file name) — the sidecar mismatch must force a recompute.
        let dir = std::env::temp_dir().join(format!("rtpf-sweep-xpolicy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::with_disk(&dir);
        let b = rtpf_suite::by_name("bs").unwrap();
        let row = run_unit(
            "bs",
            &b.program,
            "k2",
            EngineConfig::geometry(2, 16, 256).unwrap(),
        );
        let payload = to_csv(std::slice::from_ref(&row));
        store
            .disk_put(
                "sweep-x.csv",
                sweep_artifact_key_for(ReplacementPolicy::Fifo),
                &payload,
            )
            .expect("writes");
        assert!(
            load_sweep_named(
                &store,
                "sweep-x.csv",
                sweep_artifact_key_for(ReplacementPolicy::Plru),
                1
            )
            .is_none(),
            "a FIFO sweep artifact must never satisfy a PLRU request"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_sweep_artifact_is_discarded() {
        // A payload persisted under a *different* key (e.g. written by an
        // older stage version or other configuration fingerprints) must be
        // treated as absent — this is the invalidation the old
        // row-count-only check missed.
        let dir = std::env::temp_dir().join(format!("rtpf-sweep-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::with_disk(&dir);
        let key = sweep_artifact_key();
        let stale = ArtifactKey::new(
            rtpf_engine::Stage::Sweep,
            &[rtpf_engine::Fingerprint(0xdead, 0xbeef)],
        );
        let b = rtpf_suite::by_name("bs").unwrap();
        let row = run_unit(
            "bs",
            &b.program,
            "k2",
            EngineConfig::geometry(2, 16, 256).unwrap(),
        );
        let payload = to_csv(std::slice::from_ref(&row));
        store
            .disk_put("sweep.csv", stale, &payload)
            .expect("writes");
        assert!(
            load_sweep_named(&store, "sweep.csv", key, 1).is_none(),
            "stale-hash artifact must be discarded"
        );
        // Re-persisted under the current key, the same payload is served.
        store.disk_put("sweep.csv", key, &payload).expect("writes");
        assert_eq!(
            load_sweep_named(&store, "sweep.csv", key, 1),
            Some(vec![row])
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
