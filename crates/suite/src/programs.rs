//! The 37 control-flow skeletons.
//!
//! Each function mirrors the documented structure of its Mälardalen
//! namesake: loop nests with the real iteration bounds (or representative
//! ones where the bound is input-derived), conditional shapes, and code
//! sizes in the range of the compiled ARM binaries. Straight-line payload
//! sizes approximate the `-O2` instruction counts of the corresponding C
//! statements.

use rtpf_isa::shape::Shape;

/// `(name, description)` for `p1`..`p37`, in Table 1 order.
pub const NAMES: [(&str, &str); 37] = [
    (
        "adpcm",
        "ADPCM encoder/decoder: long chain of filter loops and quantizer conditionals",
    ),
    (
        "bs",
        "binary search over 15 entries: short loop with an if/else chain",
    ),
    (
        "bsort100",
        "bubble sort of 100 integers: 2-level nest with a swap conditional",
    ),
    (
        "cnt",
        "counts non-negative numbers in a 10x10 matrix: 2-level nest with a conditional",
    ),
    (
        "compress",
        "data compression kernel: buffer loop with ratio conditionals",
    ),
    (
        "cover",
        "coverage torture test: loops over huge switch statements",
    ),
    (
        "crc",
        "CRC over a 40-byte message: table setup loop plus bitwise loop with conditionals",
    ),
    (
        "duff",
        "Duff's device: switched entry into an unrolled copy loop",
    ),
    (
        "edn",
        "EDN DSP kernel collection: sequence of FIR/latsynth/iir loop nests",
    ),
    (
        "expint",
        "exponential integral: nested loop with an early-out conditional",
    ),
    (
        "fac",
        "factorial via recursion, bounded depth 5 (modelled as a bounded loop)",
    ),
    (
        "fdct",
        "forward DCT: two sequential loops with large straight-line bodies",
    ),
    (
        "fft1",
        "1024-point FFT: butterfly loop nest with twiddle conditionals",
    ),
    ("fibcall", "iterative Fibonacci of 30: a single tiny loop"),
    (
        "fir",
        "FIR filter over 700 samples with a 35-tap inner loop",
    ),
    (
        "icall",
        "indirect-call dispatch: loop over a switch of handler bodies",
    ),
    (
        "insertsort",
        "insertion sort of 10 elements: triangular 2-level nest",
    ),
    (
        "janne_complex",
        "two nested loops with mode-dependent conditional flow",
    ),
    (
        "jfdctint",
        "JPEG integer DCT: row and column passes with big basic blocks",
    ),
    (
        "lcdnum",
        "LCD digit driver: short loop over a 10-arm switch",
    ),
    (
        "lms",
        "LMS adaptive filter: sample loop with coefficient-update inner loop",
    ),
    (
        "ludcmp",
        "LU decomposition of a 6x6 system: triple nest with pivot conditionals",
    ),
    ("matmult", "20x20 matrix multiply: the classic triple nest"),
    (
        "minver",
        "3x3 matrix inversion: several small nests with singularity checks",
    ),
    (
        "ndes",
        "DES-like block cipher: 16 rounds of permutation-heavy code",
    ),
    (
        "ns",
        "search in a 4-dimensional 5^4 array: 4-level nest with a hit conditional",
    ),
    (
        "nsichneu",
        "Petri-net simulation: enormous generated if-chain, two passes",
    ),
    (
        "prime",
        "primality test: trial-division loop with remainder conditionals",
    ),
    (
        "qsort-exam",
        "non-recursive quicksort of 20 floats: partition loops with branches",
    ),
    (
        "qurt",
        "quadratic-root computation: Newton loops with discriminant branches",
    ),
    (
        "recursion",
        "recursive Fibonacci of 10, bounded (modelled as a bounded loop)",
    ),
    (
        "select",
        "select the k-th smallest of 20: partition nest with early exit",
    ),
    (
        "sqrt",
        "integer square root by Newton iteration: one small loop",
    ),
    (
        "st",
        "statistics over 100-element arrays: sum/variance/correlation loops",
    ),
    (
        "statemate",
        "generated statechart code: deep chains of mode conditionals",
    ),
    (
        "ud",
        "LU-based linear-system solve on integers: triple nest",
    ),
    (
        "whet",
        "Whetstone-like synthetic mix: math-kernel loops and conditionals",
    ),
];

/// A chain of `n` if/else diamonds with bodies of the given sizes — the
/// building block of the generated state machines.
fn if_chain(n: usize, cond: u32, then_sz: u32, else_sz: u32) -> Shape {
    Shape::seq((0..n).map(|_| Shape::if_else(cond, Shape::code(then_sz), Shape::code(else_sz))))
}

/// The control-flow skeleton of benchmark `name`, if it exists.
pub fn shape_of(name: &str) -> Option<Shape> {
    let s = match name {
        // p1: ~700 lines of C; encoder + decoder passes with filter loops.
        "adpcm" => Shape::seq([
            Shape::code(300), // init tables
            Shape::loop_(
                64, // sample blocks
                Shape::seq([
                    Shape::code(90),
                    Shape::loop_(11, Shape::code(67)), // predictor filter taps
                    Shape::if_else(3, Shape::code(105), Shape::code(75)), // quantize sign
                    if_chain(4, 2, 15, 10),            // quantizer range cascade
                ]),
            ),
            Shape::loop_(
                64,
                Shape::seq([
                    Shape::code(75),
                    Shape::loop_(11, Shape::code(60)),
                    Shape::if_else(2, Shape::code(90), Shape::code(90)),
                ]),
            ),
            Shape::code(150),
        ]),
        "bs" => Shape::seq([
            Shape::code(45),
            Shape::loop_(
                4, // log2(15) probes
                Shape::seq([
                    Shape::code(30),
                    Shape::if_else(
                        2,
                        Shape::code(22),
                        Shape::if_else(1, Shape::code(22), Shape::code(15)),
                    ),
                ]),
            ),
            Shape::code(22),
        ]),
        "bsort100" => Shape::seq([
            Shape::code(60), // init
            Shape::loop_(
                99,
                Shape::seq([
                    Shape::code(22),
                    Shape::loop_(
                        99,
                        Shape::seq([
                            Shape::code(30),
                            Shape::if_then(2, Shape::code(45)), // swap
                        ]),
                    ),
                ]),
            ),
            Shape::code(30),
        ]),
        "cnt" => Shape::seq([
            Shape::code(45),
            Shape::loop_(
                10,
                Shape::loop_(
                    10,
                    Shape::seq([
                        Shape::code(30),
                        Shape::if_else(2, Shape::code(30), Shape::code(22)),
                    ]),
                ),
            ),
            Shape::code(37),
        ]),
        "compress" => Shape::seq([
            Shape::code(180),
            Shape::loop_(
                50, // input buffer chunks
                Shape::seq([
                    Shape::code(75),
                    Shape::if_else(2, Shape::code(120), Shape::code(60)), // in table?
                    Shape::if_then(2, Shape::code(90)),                   // emit code
                    Shape::if_then(3, Shape::code(135)),                  // table reset
                ]),
            ),
            Shape::code(105),
        ]),
        "cover" => Shape::seq([
            Shape::code(30),
            Shape::loop_(
                10,
                Shape::switch(2, (0..12).map(|k| Shape::code(3 + (k % 4)))),
            ),
            Shape::loop_(
                10,
                Shape::switch(2, (0..8).map(|k| Shape::code(4 + (k % 3)))),
            ),
            Shape::loop_(
                10,
                Shape::switch(2, (0..6).map(|k| Shape::code(3 + (k % 5)))),
            ),
            Shape::code(30),
        ]),
        "crc" => Shape::seq([
            Shape::code(45),
            Shape::loop_(
                256,
                Shape::seq([
                    Shape::code(22),
                    Shape::loop_(8, Shape::if_else(1, Shape::code(22), Shape::code(15))),
                ]),
            ),
            Shape::loop_(
                40,
                Shape::seq([
                    Shape::code(37),
                    Shape::if_else(2, Shape::code(30), Shape::code(22)),
                ]),
            ),
            Shape::code(37),
        ]),
        "duff" => Shape::seq([
            Shape::code(30),
            Shape::switch(2, (0..8).map(|_| Shape::code(22))), // switched entry
            Shape::loop_(5, Shape::code(135)),                 // unrolled copy body
            Shape::code(22),
        ]),
        "edn" => Shape::seq([
            Shape::code(75),
            Shape::loop_(50, Shape::code(60)), // vec_mpy
            Shape::loop_(25, Shape::loop_(8, Shape::code(45))), // mac
            Shape::loop_(
                50,
                Shape::seq([Shape::code(37), Shape::if_then(1, Shape::code(30))]),
            ), // latsynth
            Shape::loop_(16, Shape::loop_(16, Shape::code(37))), // fir
            Shape::loop_(100, Shape::code(30)), // iir
            Shape::code(60),
        ]),
        "expint" => Shape::seq([
            Shape::code(60),
            Shape::if_else(
                2,
                Shape::loop_(
                    50,
                    Shape::seq([Shape::code(45), Shape::if_then(2, Shape::code(37))]),
                ),
                Shape::loop_(
                    47,
                    Shape::seq([
                        Shape::code(37),
                        Shape::if_else(1, Shape::code(30), Shape::code(22)),
                    ]),
                ),
            ),
            Shape::code(45),
        ]),
        "fac" => Shape::seq([
            Shape::code(22),
            Shape::loop_(5, Shape::code(37)), // unrolled recursion depth 5
            Shape::code(22),
        ]),
        "fdct" => Shape::seq([
            Shape::code(45),
            Shape::loop_(8, Shape::code(390)), // row pass: big straight-line body
            Shape::loop_(8, Shape::code(420)), // column pass
            Shape::code(37),
        ]),
        "fft1" => Shape::seq([
            Shape::code(105),
            Shape::loop_(
                10,
                Shape::seq([
                    Shape::code(45),
                    Shape::loop_(
                        32,
                        Shape::seq([
                            Shape::code(67),
                            Shape::if_else(2, Shape::code(52), Shape::code(37)),
                        ]),
                    ),
                ]),
            ),
            Shape::loop_(64, Shape::if_then(2, Shape::code(45))), // bit reversal
            Shape::code(75),
        ]),
        "fibcall" => Shape::seq([
            Shape::code(22),
            Shape::loop_(30, Shape::code(30)),
            Shape::code(15),
        ]),
        "fir" => Shape::seq([
            Shape::code(60),
            Shape::loop_(
                700 / 10, // decimated sample loop
                Shape::seq([Shape::code(22), Shape::loop_(35, Shape::code(30))]),
            ),
            Shape::code(30),
        ]),
        "icall" => Shape::seq([
            Shape::code(37),
            Shape::loop_(10, Shape::switch(2, (0..4).map(|k| Shape::code(6 + k * 2)))),
            Shape::code(22),
        ]),
        "insertsort" => Shape::seq([
            Shape::code(37),
            Shape::loop_(
                9,
                Shape::seq([
                    Shape::code(22),
                    Shape::loop_(
                        9,
                        Shape::seq([Shape::code(22), Shape::if_then(1, Shape::code(30))]),
                    ),
                ]),
            ),
            Shape::code(22),
        ]),
        "janne_complex" => Shape::seq([
            Shape::code(30),
            Shape::loop_(
                30,
                Shape::seq([
                    Shape::code(22),
                    Shape::loop_(
                        30,
                        Shape::if_else(
                            2,
                            Shape::if_else(1, Shape::code(30), Shape::code(22)),
                            Shape::code(37),
                        ),
                    ),
                ]),
            ),
            Shape::code(22),
        ]),
        "jfdctint" => Shape::seq([
            Shape::code(60),
            Shape::loop_(8, Shape::code(480)),
            Shape::loop_(8, Shape::code(495)),
            Shape::code(90),
        ]),
        "lcdnum" => Shape::seq([
            Shape::code(22),
            Shape::loop_(10, Shape::switch(1, (0..10).map(|_| Shape::code(15)))),
            Shape::code(15),
        ]),
        "lms" => Shape::seq([
            Shape::code(90),
            Shape::loop_(
                201,
                Shape::seq([
                    Shape::code(45),
                    Shape::loop_(32, Shape::code(30)), // filter taps
                    Shape::if_then(2, Shape::code(37)),
                    Shape::loop_(32, Shape::code(22)), // coefficient update
                ]),
            ),
            Shape::code(45),
        ]),
        "ludcmp" => Shape::seq([
            Shape::code(60),
            Shape::loop_(
                6,
                Shape::seq([
                    Shape::loop_(
                        6,
                        Shape::seq([Shape::code(30), Shape::loop_(6, Shape::code(22))]),
                    ),
                    Shape::if_then(2, Shape::code(37)),
                ]),
            ),
            Shape::loop_(6, Shape::loop_(6, Shape::code(30))), // back substitution
            Shape::code(45),
        ]),
        "matmult" => Shape::seq([
            Shape::code(45),
            Shape::loop_(20, Shape::loop_(20, Shape::code(22))), // init
            Shape::loop_(
                20,
                Shape::loop_(
                    20,
                    Shape::seq([Shape::code(15), Shape::loop_(20, Shape::code(30))]),
                ),
            ),
            Shape::code(22),
        ]),
        "minver" => Shape::seq([
            Shape::code(75),
            Shape::loop_(
                3,
                Shape::seq([
                    Shape::code(30),
                    Shape::if_then(2, Shape::code(45)),
                    Shape::loop_(3, Shape::code(37)),
                ]),
            ),
            Shape::loop_(
                3,
                Shape::loop_(
                    3,
                    Shape::seq([
                        Shape::code(22),
                        Shape::if_else(1, Shape::code(30), Shape::code(15)),
                    ]),
                ),
            ),
            Shape::loop_(3, Shape::loop_(3, Shape::loop_(3, Shape::code(30)))),
            Shape::code(60),
        ]),
        "ndes" => Shape::seq([
            Shape::code(225),
            Shape::loop_(
                16, // DES rounds
                Shape::seq([
                    Shape::code(165),
                    Shape::loop_(8, Shape::code(67)), // S-box lookups
                    Shape::loop_(32, Shape::code(22)), // permutation
                    Shape::if_else(2, Shape::code(75), Shape::code(60)),
                ]),
            ),
            Shape::loop_(64, Shape::code(30)), // final permutation
            Shape::code(120),
        ]),
        "ns" => Shape::seq([
            Shape::code(30),
            Shape::loop_(
                5,
                Shape::loop_(
                    5,
                    Shape::loop_(
                        5,
                        Shape::loop_(
                            5,
                            Shape::seq([Shape::code(22), Shape::if_then(1, Shape::code(22))]),
                        ),
                    ),
                ),
            ),
            Shape::code(22),
        ]),
        // p27: the giant generated Petri-net simulator (~4000 C lines).
        "nsichneu" => Shape::seq([
            Shape::code(75),
            Shape::loop_(
                2,
                Shape::seq([if_chain(60, 2, 22, 18), if_chain(60, 2, 20, 20)]),
            ),
            Shape::code(45),
        ]),
        "prime" => Shape::seq([
            Shape::code(37),
            Shape::if_then(2, Shape::code(22)),
            Shape::loop_(
                70, // trial divisors up to sqrt(n)
                Shape::seq([Shape::code(30), Shape::if_then(2, Shape::code(15))]),
            ),
            Shape::code(22),
        ]),
        "qsort-exam" => Shape::seq([
            Shape::code(75),
            Shape::loop_(
                20,
                Shape::seq([
                    Shape::code(37),
                    Shape::loop_(10, Shape::if_else(2, Shape::code(30), Shape::code(22))),
                    Shape::loop_(10, Shape::if_else(2, Shape::code(30), Shape::code(22))),
                    Shape::if_else(2, Shape::code(60), Shape::code(45)),
                ]),
            ),
            Shape::code(45),
        ]),
        "qurt" => Shape::seq([
            Shape::code(75),
            Shape::if_else(2, Shape::code(60), Shape::code(45)), // discriminant sign
            Shape::loop_(
                19, // Newton iterations for sqrt
                Shape::seq([Shape::code(45), Shape::if_then(1, Shape::code(22))]),
            ),
            Shape::code(60),
        ]),
        "recursion" => Shape::seq([
            Shape::code(22),
            Shape::loop_(25, Shape::if_else(1, Shape::code(30), Shape::code(22))), // fib(10) call tree
            Shape::code(15),
        ]),
        "select" => Shape::seq([
            Shape::code(60),
            Shape::loop_(
                10,
                Shape::seq([
                    Shape::code(30),
                    Shape::loop_(10, Shape::if_else(2, Shape::code(30), Shape::code(15))),
                    Shape::if_then(2, Shape::code(37)),
                ]),
            ),
            Shape::code(30),
        ]),
        "sqrt" => Shape::seq([
            Shape::code(30),
            Shape::loop_(
                19,
                Shape::seq([Shape::code(30), Shape::if_then(1, Shape::code(15))]),
            ),
            Shape::code(15),
        ]),
        "st" => Shape::seq([
            Shape::code(60),
            Shape::loop_(100, Shape::code(30)), // sums
            Shape::loop_(100, Shape::code(37)), // means/vars
            Shape::loop_(100, Shape::code(45)), // covariance
            Shape::if_else(2, Shape::code(45), Shape::code(37)),
            Shape::loop_(100, Shape::code(30)), // correlation
            Shape::code(60),
        ]),
        // p35: generated statechart code (~1200 lines of mode tests).
        "statemate" => Shape::seq([
            Shape::code(90),
            Shape::loop_(
                4,
                Shape::seq([
                    if_chain(40, 2, 15, 13),
                    Shape::switch(2, (0..8).map(|k| Shape::code(5 + (k % 3)))),
                    if_chain(30, 2, 13, 15),
                ]),
            ),
            Shape::code(60),
        ]),
        "ud" => Shape::seq([
            Shape::code(60),
            Shape::loop_(
                6,
                Shape::seq([
                    Shape::code(22),
                    Shape::loop_(
                        6,
                        Shape::seq([Shape::code(22), Shape::loop_(6, Shape::code(22))]),
                    ),
                ]),
            ),
            Shape::loop_(6, Shape::loop_(6, Shape::code(22))),
            Shape::code(37),
        ]),
        "whet" => Shape::seq([
            Shape::code(75),
            Shape::loop_(10, Shape::code(165)), // module 1: simple ids
            Shape::loop_(
                12,
                Shape::seq([
                    Shape::code(60),
                    Shape::if_else(2, Shape::code(45), Shape::code(37)),
                ]),
            ),
            Shape::loop_(10, Shape::loop_(6, Shape::code(37))), // array refs
            Shape::loop_(14, Shape::code(75)),                  // trig approximations
            Shape::code(60),
        ]),
        _ => return None,
    };
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_has_a_shape() {
        for (name, _) in NAMES {
            assert!(shape_of(name).is_some(), "{name} has no shape");
        }
    }

    #[test]
    fn unknown_name_has_none() {
        assert!(shape_of("dhrystone").is_none());
    }

    #[test]
    fn if_chain_builds_n_diamonds() {
        let s = if_chain(5, 1, 2, 2);
        let p = s.compile("chain");
        // Each diamond = cond block + 2 arms + merge.
        assert!(p.block_count() >= 5 * 3);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn loop_bounds_are_modest_enough_to_simulate() {
        // Guard the simulation budget: no program should exceed ~500k
        // fetches under worst-like behaviour. Approximate with the product
        // of nested bounds × body sizes implied by the shapes: just compile
        // and check static size here; the sim integration test enforces the
        // real budget.
        for (name, _) in NAMES {
            let p = shape_of(name).unwrap().compile(name);
            assert!(
                p.instr_count() < 16_000,
                "{name} too large: {}",
                p.instr_count()
            );
        }
    }
}
