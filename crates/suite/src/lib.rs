//! Synthetic reconstruction of the Mälardalen WCET benchmark suite.
//!
//! The paper evaluates on the 37 programs of the Mälardalen benchmark
//! (reference [10]), compiled for ARMv7. The C sources cannot be compiled
//! here, so this crate reconstructs each program's **control-flow
//! skeleton** — loop nests with their documented bounds, conditional and
//! switch shapes, and code sizes in the range of the real binaries — using
//! the [`Shape`](rtpf_isa::shape::Shape) DSL. Instruction-cache behaviour
//! is fully determined by these observables (addresses, blocks, CFG, loop
//! bounds), so the skeletons exercise exactly the code paths the paper's
//! technique optimizes; see DESIGN.md for the substitution argument.
//!
//! # Example
//!
//! ```
//! let all = rtpf_suite::catalog();
//! assert_eq!(all.len(), 37);
//! let matmult = rtpf_suite::by_name("matmult").expect("matmult exists");
//! assert!(matmult.program.validate().is_ok());
//! ```

#![forbid(unsafe_code)]

pub mod programs;

use rtpf_isa::Program;

/// One benchmark program: its Table 1 id, name, and compiled skeleton.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Paper Table 1 identifier (`p1`..`p37`).
    pub id: String,
    /// Mälardalen program name.
    pub name: &'static str,
    /// What the original program does and how the skeleton mirrors it.
    pub description: &'static str,
    /// The compiled control-flow skeleton.
    pub program: Program,
}

/// All 37 benchmarks in Table 1 order (`p1`..`p37`).
pub fn catalog() -> Vec<Benchmark> {
    programs::NAMES
        .iter()
        .enumerate()
        .map(|(i, &(name, description))| Benchmark {
            id: format!("p{}", i + 1),
            name,
            description,
            program: programs::shape_of(name)
                .expect("catalog name has a shape")
                .compile(name),
        })
        .collect()
}

/// Looks a benchmark up by Mälardalen name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    let idx = programs::NAMES.iter().position(|&(n, _)| n == name)?;
    let (n, description) = programs::NAMES[idx];
    Some(Benchmark {
        id: format!("p{}", idx + 1),
        name: n,
        description,
        program: programs::shape_of(n)?.compile(n),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_37_programs() {
        assert_eq!(catalog().len(), 37);
    }

    #[test]
    fn every_program_validates() {
        for b in catalog() {
            assert!(
                b.program.validate().is_ok(),
                "{} failed validation: {:?}",
                b.name,
                b.program.validate()
            );
        }
    }

    #[test]
    fn ids_follow_table1_order() {
        let all = catalog();
        assert_eq!(all[0].id, "p1");
        assert_eq!(all[0].name, "adpcm");
        assert_eq!(all[36].id, "p37");
    }

    #[test]
    fn names_are_unique() {
        let all = catalog();
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i].name, all[j].name);
            }
        }
    }

    #[test]
    fn by_name_matches_catalog() {
        let m = by_name("matmult").unwrap();
        let c = catalog();
        let in_cat = c.iter().find(|b| b.name == "matmult").unwrap();
        assert_eq!(m.id, in_cat.id);
        assert_eq!(m.program.instr_count(), in_cat.program.instr_count());
        assert!(by_name("not-a-benchmark").is_none());
    }

    #[test]
    fn code_sizes_span_realistic_range() {
        // The paper selects cache sizes so pre-optimization miss rates span
        // 1–10%; that needs programs from a few hundred bytes to several
        // KiB of text.
        let sizes: Vec<u64> = catalog().iter().map(|b| b.program.code_bytes()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min < 1024, "smallest program {min} B should be tiny");
        assert!(max > 10_000, "largest program {max} B should exceed 10 KiB");
    }

    #[test]
    fn nsichneu_is_the_giant_state_machine() {
        let n = by_name("nsichneu").unwrap();
        // The real nsichneu is ~4000 lines of generated if-chains; ours
        // must dwarf the median benchmark.
        assert!(n.program.code_bytes() > 15_000);
        assert!(n.program.block_count() > 200);
    }
}
